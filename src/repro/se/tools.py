"""The software-engineering design domain.

The paper reports that "initial 'in-the-field' experiments validating
the modeling concepts of the AC level have been run in the design areas
of VLSI *and software engineering*" (Sect.6).  This package provides
that second domain, demonstrating that the CONCORD model is
domain-independent: the same DA/DOP machinery drives a team developing
a software system.

Design objects: a ``System`` composed of ``Module``s composed of
``SourceUnit``s.  DOV payloads carry ``sources`` (unit name → simulated
source descriptor), ``objects`` (compiled units), ``test_report`` and
``release``.

Tools (all deterministic, seeded where stochastic):

* ``specify``       — derive the module breakdown from requirements;
* ``edit``          — write/extend source units (introduces seeded
  defects);
* ``compile_units`` — compile sources to objects (fails on syntax
  defects);
* ``unit_test``     — run tests, producing a test report (finds seeded
  logic defects);
* ``debug``         — remove found defects;
* ``integrate``     — link objects into a release candidate;
* ``review``        — static quality check used as a test-tool feature.
"""

from __future__ import annotations

from typing import Any

from repro.dc.design_manager import ToolRegistry
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    Constraint,
    DesignObjectType,
)
from repro.te.context import DopContext
from repro.util.errors import WorkflowError
from repro.util.rng import SeededRng


def _se_attributes() -> list[AttributeDef]:
    return [
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("kind", AttributeKind.STRING),
        AttributeDef("requirements", AttributeKind.JSON, required=False),
        AttributeDef("sources", AttributeKind.JSON, required=False),
        AttributeDef("objects", AttributeKind.JSON, required=False),
        AttributeDef("test_report", AttributeKind.JSON, required=False),
        AttributeDef("release", AttributeKind.JSON, required=False),
        AttributeDef("defects", AttributeKind.INT, required=False),
        AttributeDef("coverage", AttributeKind.FLOAT, required=False),
    ]


def _non_negative_defects() -> list[Constraint]:
    def check(data: dict[str, Any]) -> bool:
        defects = data.get("defects")
        return defects is None or defects >= 0

    return [Constraint("non-negative-defects", check,
                       "defect counts cannot be negative")]


def se_dots() -> dict[str, DesignObjectType]:
    """System ⊃ Module ⊃ SourceUnit."""
    unit = DesignObjectType("SourceUnit", _se_attributes(),
                            constraints=_non_negative_defects())
    module = DesignObjectType("SwModule", _se_attributes(),
                              parts={"units": unit},
                              constraints=_non_negative_defects())
    system = DesignObjectType("SwSystem", _se_attributes(),
                              parts={"modules": module},
                              constraints=_non_negative_defects())
    return {"SwSystem": system, "SwModule": module, "SourceUnit": unit}


# ---------------------------------------------------------------------------
# tools
# ---------------------------------------------------------------------------

def specify(context: DopContext, params: dict[str, Any]) -> None:
    """Derive the module/unit breakdown from the requirements."""
    requirements = context.data.get("requirements")
    if not requirements or "features" not in requirements:
        raise WorkflowError("specify needs requirements with 'features'")
    units = {}
    for feature in requirements["features"]:
        units[f"unit_{feature}"] = {
            "feature": feature, "lines": 0, "syntax_defects": 0,
            "logic_defects": 0,
        }
    context.data["sources"] = units
    context.data["defects"] = 0


def edit(context: DopContext, params: dict[str, Any]) -> None:
    """Write source code; a seeded fraction of edits plants defects.

    Copy-on-write over the checked-out state: payloads arriving via
    checkout are frozen, so the tool derives fresh unit dicts instead
    of mutating them in place.
    """
    sources = context.data.get("sources")
    if not sources:
        raise WorkflowError("edit needs sources (run specify first)")
    rng = SeededRng(int(params.get("seed", 0)))
    defect_rate = float(params.get("defect_rate", 0.3))
    lines_per_unit = int(params.get("lines", 100))
    edited = {}
    for name, unit in sources.items():
        unit = dict(unit)
        unit["lines"] += lines_per_unit
        if rng.bernoulli(defect_rate):
            unit["syntax_defects"] += 1
        if rng.bernoulli(defect_rate):
            unit["logic_defects"] += 1
        edited[name] = unit
    context.data["sources"] = edited
    context.data["defects"] = sum(
        u["syntax_defects"] + u["logic_defects"]
        for u in edited.values())


def compile_units(context: DopContext, params: dict[str, Any]) -> None:
    """Compile sources; syntax defects make units fail to compile."""
    sources = context.data.get("sources")
    if not sources:
        raise WorkflowError("compile needs sources")
    objects = {}
    failed = []
    for name, unit in sources.items():
        if unit.get("syntax_defects", 0) > 0:
            failed.append(name)
        else:
            objects[name] = {"from": name, "size": unit["lines"] * 4}
    context.data["objects"] = objects
    report = dict(context.data.get("test_report") or {})
    report["compile_failures"] = failed
    context.data["test_report"] = report


def unit_test(context: DopContext, params: dict[str, Any]) -> None:
    """Run unit tests over the compiled units; finds logic defects."""
    objects = context.data.get("objects")
    sources = context.data.get("sources")
    if objects is None or sources is None:
        raise WorkflowError("unit_test needs compiled objects")
    found = {name: sources[name].get("logic_defects", 0)
             for name in objects}
    tested = len(objects)
    total_units = len(sources)
    report = dict(context.data.get("test_report") or {})
    report["defects_found"] = found
    report["failures"] = sum(found.values())
    context.data["test_report"] = report
    context.data["coverage"] = round(tested / total_units, 3) \
        if total_units else 0.0


def debug(context: DopContext, params: dict[str, Any]) -> None:
    """Fix defects (syntax first, then logic found by tests)."""
    sources = context.data.get("sources")
    if not sources:
        raise WorkflowError("debug needs sources")
    fixes = int(params.get("fixes", 10_000))
    fixed = {}
    for name, unit in sources.items():
        unit = dict(unit)
        while fixes > 0 and unit.get("syntax_defects", 0) > 0:
            unit["syntax_defects"] -= 1
            fixes -= 1
        while fixes > 0 and unit.get("logic_defects", 0) > 0:
            unit["logic_defects"] -= 1
            fixes -= 1
        fixed[name] = unit
    context.data["sources"] = fixed
    context.data["defects"] = sum(
        u["syntax_defects"] + u["logic_defects"]
        for u in fixed.values())


def integrate(context: DopContext, params: dict[str, Any]) -> None:
    """Link all objects into a release candidate."""
    objects = context.data.get("objects")
    sources = context.data.get("sources")
    if not objects or sources is None:
        raise WorkflowError("integrate needs compiled objects")
    if len(objects) != len(sources):
        raise WorkflowError(
            f"integration rejected: {len(sources) - len(objects)} units "
            f"failed to compile")
    context.data["release"] = {
        "units": sorted(objects),
        "size": sum(o["size"] for o in objects.values()),
        "defects": context.data.get("defects", 0),
    }


def review_passes(data: dict[str, Any],
                  max_defects: int = 0,
                  min_coverage: float = 1.0) -> bool:
    """The domain's test-tool feature: release quality gate."""
    if data.get("release") is None:
        return False
    if data.get("defects", 1) > max_defects:
        return False
    return data.get("coverage", 0.0) >= min_coverage


#: simulated running times (minutes)
SE_TOOL_DURATIONS: dict[str, float] = {
    "specify": 120.0,
    "edit": 240.0,
    "compile_units": 10.0,
    "unit_test": 45.0,
    "debug": 90.0,
    "integrate": 30.0,
}


def register_se_tools(registry: ToolRegistry) -> None:
    """Register the software-engineering tools."""
    registry.register("specify", specify, SE_TOOL_DURATIONS["specify"])
    registry.register("edit", edit, SE_TOOL_DURATIONS["edit"])
    registry.register("compile_units", compile_units,
                      SE_TOOL_DURATIONS["compile_units"])
    registry.register("unit_test", unit_test,
                      SE_TOOL_DURATIONS["unit_test"])
    registry.register("debug", debug, SE_TOOL_DURATIONS["debug"])
    registry.register("integrate", integrate,
                      SE_TOOL_DURATIONS["integrate"])
