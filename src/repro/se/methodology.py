"""Development methodology for the software-engineering domain.

The counterparts of the VLSI design plane: domain ordering constraints
(compile before test, test before integrate, ...) and scripts for the
develop-test-debug cycle, expressed with exactly the same DC-level
machinery that drives chip planning — the point the paper's Sect.6
makes about AC-level domain independence.
"""

from __future__ import annotations

from repro.core.features import (
    DesignSpecification,
    RangeFeature,
    TestToolFeature,
)
from repro.dc.constraints import DomainConstraintSet, FollowedBy, NotBefore
from repro.dc.script import (
    DaOpStep,
    DopStep,
    Iteration,
    Open,
    Script,
    Sequence,
)
from repro.se.tools import review_passes


def se_constraints() -> DomainConstraintSet:
    """Ordering constraints of the development domain."""
    return DomainConstraintSet([
        NotBefore("specify", "edit"),
        NotBefore("edit", "compile_units"),
        NotBefore("compile_units", "unit_test"),
        NotBefore("unit_test", "integrate"),
        FollowedBy("debug", "compile_units"),
    ], domain="software-engineering")


def release_spec(max_defects: int = 0,
                 min_coverage: float = 1.0) -> DesignSpecification:
    """Goal of a development DA: a releasable, tested, defect-free DOV."""
    return DesignSpecification([
        RangeFeature("no-defects", "defects", lo=0, hi=float(max_defects)),
        RangeFeature("coverage", "coverage", lo=min_coverage),
        TestToolFeature("review", "release-review",
                        lambda data: review_passes(data, max_defects,
                                                   min_coverage)),
    ])


def development_script(max_debug_rounds: int = 6) -> Script:
    """The develop / compile / test / debug cycle as a DA script.

    Specify, edit, then iterate compile-test-(debug) until the quality
    state is final, then integrate — with an open segment before
    integration for ad-hoc designer actions.
    """
    return Script(Sequence(
        DopStep("specify"),
        DopStep("edit"),
        Iteration(
            Sequence(
                DopStep("compile_units"),
                DopStep("unit_test"),
                DaOpStep("Evaluate"),
                DopStep("debug"),
                DopStep("compile_units"),
                DopStep("unit_test"),
                DaOpStep("Evaluate"),
            ),
            max_rounds=max_debug_rounds,
            name="test-debug-cycle",
        ),
        Open(name="pre-release", allowed_tools=(
            "unit_test", "debug", "compile_units")),
        DopStep("integrate"),
        DaOpStep("Evaluate"),
    ), name="develop-module")


def module_script(max_debug_rounds: int = 4) -> Script:
    """Script of a sub-DA developing one module (no integration)."""
    return Script(Sequence(
        DopStep("specify"),
        DopStep("edit"),
        Iteration(
            Sequence(
                DopStep("compile_units"),
                DopStep("unit_test"),
                DaOpStep("Evaluate"),
                DopStep("debug"),
                DopStep("compile_units"),
                DopStep("unit_test"),
                DaOpStep("Evaluate"),
            ),
            max_rounds=max_debug_rounds,
            name="module-test-debug",
        ),
    ), name="develop-single-module")
