"""The software-engineering design domain (Sect.6's second in-field
validation area): DOTs, tools and methodology for team software
development under CONCORD."""

from repro.se.methodology import (
    development_script,
    module_script,
    release_spec,
    se_constraints,
)
from repro.se.tools import (
    SE_TOOL_DURATIONS,
    register_se_tools,
    review_passes,
    se_dots,
)

__all__ = [
    "SE_TOOL_DURATIONS",
    "development_script",
    "module_script",
    "register_se_tools",
    "release_spec",
    "review_passes",
    "se_constraints",
    "se_dots",
]
