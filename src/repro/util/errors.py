"""Exception hierarchy shared by all CONCORD subsystems.

Every error raised by the library derives from :class:`ConcordError`, so
applications can catch library failures with a single ``except`` clause.
The sub-hierarchies mirror the architectural levels of the paper: the
repository (advanced DBMS), the TE level (transactions, locks, recovery),
the DC level (scripts, rules, constraints) and the AC level (cooperation
protocol, DA lifecycle).
"""

from __future__ import annotations


class ConcordError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Repository (design data repository / advanced DBMS substrate)
# ---------------------------------------------------------------------------

class RepositoryError(ConcordError):
    """Base class for design-data-repository failures."""


class SchemaError(RepositoryError):
    """A design object type (DOT) definition is invalid or violated."""


class IntegrityError(RepositoryError):
    """A DOV violates schema integrity constraints on checkin."""


class UnknownObjectError(RepositoryError):
    """A referenced DOV / DOT / derivation graph does not exist."""


class StorageError(RepositoryError):
    """The simulated persistent store failed (e.g. during a crash window)."""


# ---------------------------------------------------------------------------
# TE level (transactions, locks, recovery)
# ---------------------------------------------------------------------------

class TransactionError(ConcordError):
    """Base class for TE-level failures."""


class LockConflictError(TransactionError):
    """A lock request conflicts with an incompatible granted lock."""

    def __init__(self, message: str, holder: str | None = None) -> None:
        super().__init__(message)
        #: identifier of the conflicting lock holder, when known
        self.holder = holder


class TransactionStateError(TransactionError):
    """An operation is illegal in the transaction's current state."""


class RecoveryError(TransactionError):
    """A recovery point / savepoint operation failed."""


class TwoPhaseCommitError(TransactionError):
    """The 2PC protocol aborted or could not complete."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------

class NetworkError(ConcordError):
    """Base class for simulated-network failures."""


class NodeDownError(NetworkError):
    """The destination node is crashed."""

    def __init__(self, node: str) -> None:
        super().__init__(f"node {node!r} is down")
        self.node = node


class RpcError(NetworkError):
    """A transactional RPC could not be completed."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

class KernelError(ConcordError):
    """The discrete-event kernel could not complete a run (e.g. the
    event budget was exhausted before quiescence)."""


# ---------------------------------------------------------------------------
# DC level (workflow)
# ---------------------------------------------------------------------------

class WorkflowError(ConcordError):
    """Base class for DC-level failures."""


class ScriptError(WorkflowError):
    """A script definition is malformed."""


class ConstraintViolationError(WorkflowError):
    """A DOP sequence violates a domain ordering constraint."""


class RuleError(WorkflowError):
    """An ECA rule definition or firing failed."""


# ---------------------------------------------------------------------------
# AC level (cooperation)
# ---------------------------------------------------------------------------

class CooperationError(ConcordError):
    """Base class for AC-level failures."""


class IllegalTransitionError(CooperationError):
    """A DA operation is not permitted in the DA's current state (Fig.7)."""

    def __init__(self, message: str, state: str | None = None,
                 operation: str | None = None) -> None:
        super().__init__(message)
        self.state = state
        self.operation = operation


class ScopeViolationError(CooperationError):
    """A DA accessed a DOV outside its scope."""


class RelationshipError(CooperationError):
    """A cooperation operation used a missing/invalid relationship."""


class SpecificationError(CooperationError):
    """A design specification is invalid (e.g. not a legal refinement)."""


class NegotiationError(CooperationError):
    """A negotiation protocol step is illegal."""


class DelegationError(CooperationError):
    """A delegation is invalid (e.g. DOT not part of the super-DA's DOT)."""
