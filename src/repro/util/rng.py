"""Seeded random sources for workload generation.

Experiments must be reproducible, so every stochastic decision in the
library flows through a :class:`SeededRng` owned by the experiment
driver.  The class is a thin wrapper around :class:`random.Random`
adding a few distributions used by the workload generator (bounded
normals, zipf-like popularity) without pulling in numpy for the core
library.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """Deterministic random source with workload-oriented helpers."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    # -- passthroughs ------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._rng.uniform(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of *seq*."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Choose *k* distinct elements of *seq*."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle *items* in place."""
        self._rng.shuffle(items)

    # -- derived distributions --------------------------------------------

    def bounded_normal(self, mean: float, sd: float,
                       lo: float, hi: float) -> float:
        """Normal sample clamped to [lo, hi].

        Used for tool running times: mostly near the mean, never
        negative, never absurdly long.
        """
        value = self._rng.gauss(mean, sd)
        return max(lo, min(hi, value))

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean (inter-arrival times)."""
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Return an index in [0, n) with zipf-like popularity skew.

        Index 0 is the most popular.  ``skew=0`` degenerates to uniform.
        """
        if n <= 0:
            raise ValueError("zipf_index requires n >= 1")
        if skew <= 0:
            return self._rng.randrange(n)
        weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
        total = sum(weights)
        point = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if point <= acc:
                return i
        return n - 1

    def bernoulli(self, p: float) -> bool:
        """True with probability *p*."""
        return self._rng.random() < p

    def fork(self, salt: int) -> "SeededRng":
        """Derive an independent child stream (per-agent streams)."""
        return SeededRng(self.seed * 1_000_003 + salt)
