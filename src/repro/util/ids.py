"""Deterministic, typed identifier generation.

All CONCORD entities (DAs, DOVs, DOPs, transactions, nodes, ...) are
identified by short, human-readable, *deterministic* ids.  Determinism
matters because the reproduction's experiments must be replayable: the
n-th DA created by a run is always ``da-n`` regardless of wall-clock
time or interpreter hash seeds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass
class IdGenerator:
    """Produces ids of the form ``<prefix>-<counter>`` per prefix.

    Example::

        gen = IdGenerator()
        gen.next("da")   # 'da-1'
        gen.next("da")   # 'da-2'
        gen.next("dov")  # 'dov-1'
    """

    _counters: dict[str, itertools.count] = field(default_factory=dict)

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix* (counters start at 1)."""
        counter = self._counters.get(prefix)
        if counter is None:
            counter = itertools.count(1)
            self._counters[prefix] = counter
        return f"{prefix}-{next(counter)}"

    def reset(self) -> None:
        """Forget all counters (used between experiment repetitions)."""
        self._counters.clear()


#: Module-level generator for callers that do not manage their own scope.
#: Library components always accept an injected generator; this default is
#: a convenience for scripts and tests.
default_ids = IdGenerator()
