"""Structured event tracing across all CONCORD levels.

The paper's Fig.1 and Fig.8 describe how operations at the AC, DC and TE
levels nest and how the activity managers interact.  To *regenerate*
those figures we need a machine-readable record of every operation each
manager performs.  :class:`EventTrace` is that record: a flat, ordered
list of :class:`TraceEvent` rows tagged with the architectural level and
the acting component, plus helpers to filter and summarise.

The trace is purely observational — no component behaviour depends on
it — so it can be disabled (``enabled=False``) in throughput benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator


class Level(str, Enum):
    """Architectural level of an event (paper Sect.2)."""

    AC = "AC"            # administration / cooperation
    DC = "DC"            # design control (workflow)
    TE = "TE"            # tool execution (transactions)
    REPOSITORY = "REPO"  # design data repository
    NET = "NET"          # network substrate
    SIM = "SIM"          # simulation driver


@dataclass(frozen=True)
class TraceEvent:
    """One operation performed by one component at one instant."""

    seq: int
    time: float
    level: Level
    component: str      # e.g. 'CM', 'DM:da-2', 'client-TM:ws-1'
    operation: str      # e.g. 'Create_Sub_DA', 'checkout', 'Propagate'
    subject: str        # entity acted upon, e.g. 'da-3', 'dov-7'
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.time:9.3f}] {self.level.value:4s} "
                f"{self.component:16s} {self.operation:28s} {self.subject}")


class EventTrace:
    """Ordered collection of :class:`TraceEvent` with query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._seq = 0

    # -- recording ----------------------------------------------------------

    def record(self, time: float, level: Level, component: str,
               operation: str, subject: str = "",
               **detail: Any) -> TraceEvent | None:
        """Append an event; returns it (or None when tracing is disabled)."""
        if not self.enabled:
            return None
        self._seq += 1
        event = TraceEvent(self._seq, time, level, component,
                           operation, subject, detail)
        self._events.append(event)
        return event

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self._seq = 0

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        """All events, in order (a copy is *not* made; do not mutate)."""
        return self._events

    def at_level(self, level: Level) -> list[TraceEvent]:
        """Events recorded at one architectural level."""
        return [e for e in self._events if e.level is level]

    def by_component(self, component: str) -> list[TraceEvent]:
        """Events whose component name starts with *component*."""
        return [e for e in self._events
                if e.component == component
                or e.component.startswith(component + ":")]

    def operations(self, *names: str) -> list[TraceEvent]:
        """Events whose operation is one of *names*."""
        wanted = set(names)
        return [e for e in self._events if e.operation in wanted]

    def count_by_level(self) -> dict[Level, int]:
        """Histogram of events per level (the Fig.1 summary)."""
        return dict(Counter(e.level for e in self._events))

    def count_by_operation(self, level: Level | None = None) -> dict[str, int]:
        """Histogram of events per operation name, optionally per level."""
        events: Iterable[TraceEvent] = self._events
        if level is not None:
            events = (e for e in self._events if e.level is level)
        return dict(Counter(e.operation for e in events))

    def render(self, limit: int | None = None) -> str:
        """Human-readable dump (used by examples and bench output)."""
        rows = self._events if limit is None else self._events[:limit]
        return "\n".join(str(e) for e in rows)
