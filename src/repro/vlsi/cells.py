"""The VLSI cell hierarchy of Fig.2 (right-hand side).

"a chip is divided into modules representing arithmetic-logic unit,
control unit, and so on; each module, in turn, can be partitioned into
blocks at the next level (e.g., read-only memory, instruction decode,
etc.) and each of these blocks is again partitioned into standard cells
at the lowest level (e.g., multiplexer, AND-circuit, etc.)."

:class:`CellHierarchy` is the in-memory tree; :func:`sample_hierarchy`
builds the paper's illustrative four-level example, and
:func:`synthetic_hierarchy` generates seeded hierarchies of arbitrary
fan-out for the workload experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.util.rng import SeededRng


class CellLevel(int, Enum):
    """The four levels of the sample cell hierarchy."""

    CHIP = 0
    MODULE = 1
    BLOCK = 2
    STANDARD_CELL = 3

    @property
    def below(self) -> "CellLevel | None":
        """The next-lower level (None below standard cells)."""
        if self is CellLevel.STANDARD_CELL:
            return None
        return CellLevel(self.value + 1)


@dataclass
class Cell:
    """One cell of the hierarchy."""

    name: str
    level: CellLevel
    children: list["Cell"] = field(default_factory=list)
    #: intrinsic area demand of a leaf (standard cells); inner cells
    #: derive theirs from their subtree
    base_area: float = 1.0

    def area_demand(self) -> float:
        """Total area demand of this cell's subtree."""
        if not self.children:
            return self.base_area
        return sum(child.area_demand() for child in self.children)

    def walk(self) -> Iterator["Cell"]:
        """Depth-first traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Cell | None":
        """Locate a descendant (or self) by name."""
        for cell in self.walk():
            if cell.name == name:
                return cell
        return None

    @property
    def is_leaf(self) -> bool:
        """True for standard cells / childless cells."""
        return not self.children


class CellHierarchy:
    """A rooted cell tree with lookup helpers."""

    def __init__(self, root: Cell) -> None:
        self.root = root
        self._index = {cell.name: cell for cell in root.walk()}
        if len(self._index) != sum(1 for _ in root.walk()):
            raise ValueError("cell names in a hierarchy must be unique")

    def cell(self, name: str) -> Cell:
        """Look up a cell by name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no cell named {name!r}") from None

    def cells(self, level: CellLevel | None = None) -> list[Cell]:
        """All cells, optionally filtered to one level."""
        if level is None:
            return list(self._index.values())
        return [c for c in self._index.values() if c.level is level]

    def depth(self) -> int:
        """Number of levels present."""
        return 1 + max((c.level.value for c in self._index.values()),
                       default=0) - self.root.level.value

    def __len__(self) -> int:
        return len(self._index)


def sample_hierarchy() -> CellHierarchy:
    """The paper's illustrative chip: modules ALU/CU, blocks, std cells."""
    def std(name: str, area: float) -> Cell:
        return Cell(name, CellLevel.STANDARD_CELL, base_area=area)

    rom = Cell("rom", CellLevel.BLOCK,
               [std("mux-1", 2.0), std("and-1", 1.0), std("reg-1", 3.0)])
    idec = Cell("instr-decode", CellLevel.BLOCK,
                [std("mux-2", 2.0), std("and-2", 1.0)])
    adder = Cell("adder", CellLevel.BLOCK,
                 [std("xor-1", 1.5), std("and-3", 1.0), std("or-1", 1.0)])
    shifter = Cell("shifter", CellLevel.BLOCK,
                   [std("mux-3", 2.0), std("reg-2", 3.0)])
    alu = Cell("alu", CellLevel.MODULE, [adder, shifter])
    cu = Cell("control-unit", CellLevel.MODULE, [rom, idec])
    chip = Cell("chip-0", CellLevel.CHIP, [alu, cu])
    return CellHierarchy(chip)


def synthetic_hierarchy(rng: SeededRng, modules: int = 3,
                        blocks_per_module: int = 3,
                        cells_per_block: int = 4,
                        name: str = "chip") -> CellHierarchy:
    """Generate a seeded hierarchy for workload experiments."""
    module_list = []
    for m in range(modules):
        block_list = []
        for b in range(blocks_per_module):
            std_cells = [
                Cell(f"{name}-m{m}-b{b}-c{c}", CellLevel.STANDARD_CELL,
                     base_area=rng.uniform(1.0, 4.0))
                for c in range(cells_per_block)]
            block_list.append(Cell(f"{name}-m{m}-b{b}", CellLevel.BLOCK,
                                   std_cells))
        module_list.append(Cell(f"{name}-m{m}", CellLevel.MODULE,
                                block_list))
    return CellHierarchy(Cell(name, CellLevel.CHIP, module_list))
