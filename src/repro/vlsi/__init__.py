"""The VLSI design domain of Sect.3: PLAYOUT-style chip planning.

Provides the sample design process the paper validates CONCORD with:
cell hierarchies, module/net lists, shape functions, floorplans, the
seven design tools of Fig.2 (including a working chip planner with
bipartitioning, sizing, dimensioning and global routing), and the
design-plane methodology with its scripts and ordering constraints.
"""

from repro.vlsi.cells import (
    Cell,
    CellHierarchy,
    CellLevel,
    sample_hierarchy,
    synthetic_hierarchy,
)
from repro.vlsi.chip_planner import ChipPlanner, bipartition, global_route
from repro.vlsi.floorplan import (
    Floorplan,
    FloorplanInterface,
    PinInterval,
    Placement,
)
from repro.vlsi.methodology import (
    DESIGN_PLANE_ARROWS,
    DesignDomain,
    PlaneArrow,
    TraversalStep,
    alternative_paths_script,
    chip_design_script,
    chip_planning_script,
    full_design_script,
    playout_constraints,
    traversal_matrix,
    traverse_design_plane,
)
from repro.vlsi.netlist import Net, NetList, synthetic_netlist
from repro.vlsi.shapes import Shape, ShapeFunction, shapes_for_area
from repro.vlsi.tools import (
    TOOL_DURATIONS,
    TOOL_NUMBERS,
    design_rule_check,
    register_vlsi_tools,
    vlsi_dots,
)

__all__ = [
    "Cell",
    "CellHierarchy",
    "CellLevel",
    "ChipPlanner",
    "DESIGN_PLANE_ARROWS",
    "DesignDomain",
    "Floorplan",
    "FloorplanInterface",
    "Net",
    "NetList",
    "PinInterval",
    "Placement",
    "PlaneArrow",
    "Shape",
    "ShapeFunction",
    "TOOL_DURATIONS",
    "TOOL_NUMBERS",
    "TraversalStep",
    "alternative_paths_script",
    "bipartition",
    "chip_design_script",
    "chip_planning_script",
    "design_rule_check",
    "full_design_script",
    "global_route",
    "playout_constraints",
    "register_vlsi_tools",
    "sample_hierarchy",
    "shapes_for_area",
    "synthetic_hierarchy",
    "synthetic_netlist",
    "traversal_matrix",
    "traverse_design_plane",
    "vlsi_dots",
]
