"""The chip planner toolbox (tool 5 of Fig.2).

"the chip planner is a tool box containing several tools:
bipartitioning, sizing, dimensioning, and global routing. ... the
designer may perform re-iterations of parts of the internal tool
executions in order to achieve optimal space exploitation.  As a
result, the chip planner arranges the subcells of the CUD."

Implemented tools:

* :func:`bipartition` — balanced min-cut partitioning of the subcells
  (greedy seed + Kernighan–Lin-style improvement passes);
* **sizing** — per-partition shape selection via recursive slicing,
  driven by the subcells' shape functions;
* **dimensioning** — fitting the slicing result into the CUD's
  interface bounds;
* :func:`global_route` — half-perimeter wirelength estimation over the
  placed subcells;
* :class:`ChipPlanner` — the toolbox driver with designer
  re-iterations (it retries with different partition seeds and keeps
  the best arrangement).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import SeededRng
from repro.vlsi.floorplan import Floorplan, FloorplanInterface, Placement
from repro.vlsi.netlist import NetList
from repro.vlsi.shapes import Shape, ShapeFunction


# ---------------------------------------------------------------------------
# bipartitioning
# ---------------------------------------------------------------------------

def bipartition(netlist: NetList, areas: dict[str, float],
                rng: SeededRng | None = None,
                passes: int = 4) -> tuple[set[str], set[str]]:
    """Balanced min-cut bipartition of the netlist's cells.

    Greedy area-balanced seed, then KL-style single-move improvement:
    repeatedly move the cell with the best cut-gain whose move keeps
    the areas within a 60/40 balance, until no improving move exists.
    """
    cells = list(netlist.cells)
    if len(cells) < 2:
        return set(cells), set()
    if rng is not None:
        rng.shuffle(cells)
    else:
        cells.sort(key=lambda c: -areas.get(c, 1.0))

    total = sum(areas.get(c, 1.0) for c in cells)
    part_a: set[str] = set()
    part_b: set[str] = set()
    area_a = area_b = 0.0
    for cell in cells:
        if area_a <= area_b:
            part_a.add(cell)
            area_a += areas.get(cell, 1.0)
        else:
            part_b.add(cell)
            area_b += areas.get(cell, 1.0)

    def balanced_after(cell: str, src: set[str]) -> bool:
        moved = areas.get(cell, 1.0)
        if src is part_a:
            new_a, new_b = area_a - moved, area_b + moved
        else:
            new_a, new_b = area_a + moved, area_b - moved
        if total <= 0:
            return True
        share = new_a / total
        return 0.4 <= share <= 0.6 or min(len(part_a), len(part_b)) <= 1

    for _ in range(passes):
        best_gain = 0
        best_move: tuple[str, set[str], set[str]] | None = None
        current_cut = netlist.cut_size(part_a, part_b)
        for cell in cells:
            src, dst = (part_a, part_b) if cell in part_a \
                else (part_b, part_a)
            if len(src) <= 1 or not balanced_after(cell, src):
                continue
            src.remove(cell)
            dst.add(cell)
            gain = current_cut - netlist.cut_size(part_a, part_b)
            dst.remove(cell)
            src.add(cell)
            if gain > best_gain:
                best_gain, best_move = gain, (cell, src, dst)
        if best_move is None:
            break
        cell, src, dst = best_move
        src.remove(cell)
        dst.add(cell)
        moved = areas.get(cell, 1.0)
        if src is part_a:
            area_a -= moved
            area_b += moved
        else:
            area_a += moved
            area_b -= moved
    return part_a, part_b


# ---------------------------------------------------------------------------
# sizing + dimensioning (recursive slicing placement)
# ---------------------------------------------------------------------------

@dataclass
class _Slice:
    """Result of recursively placing a cell set: dims + placements."""

    width: float
    height: float
    placements: list[Placement]


def _place_cells(cells: list[str], netlist: NetList,
                 shape_fns: dict[str, ShapeFunction],
                 areas: dict[str, float],
                 rng: SeededRng | None, horizontal: bool) -> _Slice:
    """Recursive slicing: partition, place halves, compose."""
    if len(cells) == 1:
        cell = cells[0]
        shape = _pick_shape(shape_fns.get(cell), areas.get(cell, 1.0),
                            prefer_wide=horizontal)
        return _Slice(shape.width, shape.height,
                      [Placement(cell, 0.0, 0.0, shape.width,
                                 shape.height)])
    sub_nets = _restrict(netlist, set(cells))
    part_a, part_b = bipartition(sub_nets, areas, rng)
    if not part_a or not part_b:
        half = max(1, len(cells) // 2)
        part_a, part_b = set(cells[:half]), set(cells[half:])
    left = _place_cells(sorted(part_a), netlist, shape_fns, areas, rng,
                        not horizontal)
    right = _place_cells(sorted(part_b), netlist, shape_fns, areas, rng,
                         not horizontal)
    if horizontal:   # halves side by side
        placements = list(left.placements)
        placements += [Placement(p.cell, p.x + left.width, p.y, p.width,
                                 p.height) for p in right.placements]
        return _Slice(left.width + right.width,
                      max(left.height, right.height), placements)
    placements = list(left.placements)
    placements += [Placement(p.cell, p.x, p.y + left.height, p.width,
                             p.height) for p in right.placements]
    return _Slice(max(left.width, right.width),
                  left.height + right.height, placements)


def _pick_shape(shape_fn: ShapeFunction | None, area: float,
                prefer_wide: bool) -> Shape:
    if shape_fn is None:
        side = max(area, 1e-9) ** 0.5
        return Shape(round(side, 3), round(side, 3))
    shapes = shape_fn.shapes
    if prefer_wide:
        return max(shapes, key=lambda s: s.aspect)
    return min(shapes, key=lambda s: s.aspect)


def _restrict(netlist: NetList, keep: set[str]) -> NetList:
    nets = []
    for net in netlist.nets:
        members = tuple(c for c in net.cells if c in keep)
        if len(members) >= 2:
            nets.append(type(net)(net.name, members))
    return NetList(cells=[c for c in netlist.cells if c in keep],
                   nets=nets)


# ---------------------------------------------------------------------------
# global routing (wirelength estimation)
# ---------------------------------------------------------------------------

def global_route(floorplan: Floorplan, netlist: NetList) -> float:
    """Half-perimeter wirelength over the placed subcells.

    The classic chip-planning estimate: for each net, the half
    perimeter of the bounding box of its pins (subcell centres).
    """
    total = 0.0
    for net in netlist.nets:
        points = [floorplan.placements[c].center for c in net.cells
                  if c in floorplan.placements]
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return round(total, 3)


# ---------------------------------------------------------------------------
# the toolbox driver
# ---------------------------------------------------------------------------

class ChipPlanner:
    """Tool 5: plan a CUD's floorplan within its interface bounds.

    ``iterations`` models the designer's re-iterations: each iteration
    replans with a different partition seed; the best arrangement
    (smallest wirelength among fitting plans, else smallest area
    overflow) wins.
    """

    def __init__(self, iterations: int = 3, seed: int = 0) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.seed = seed

    def plan(self, cud: str, netlist: NetList,
             shape_functions: dict[str, ShapeFunction],
             interface: FloorplanInterface) -> Floorplan:
        """Run bipartitioning / sizing / dimensioning / global routing."""
        areas = {c: (shape_functions[c].min_area()
                     if c in shape_functions else 1.0)
                 for c in netlist.cells}
        best: Floorplan | None = None
        best_key: tuple[float, float] | None = None
        for attempt in range(self.iterations):
            rng = SeededRng(self.seed * 7919 + attempt)
            sliced = _place_cells(sorted(netlist.cells), netlist,
                                  shape_functions, areas, rng,
                                  horizontal=True)
            floorplan = Floorplan(
                cud=cud, width=round(sliced.width, 3),
                height=round(sliced.height, 3),
                iterations=attempt + 1)
            for placement in sliced.placements:
                floorplan.placements[placement.cell] = placement
            part_a = {p.cell for p in sliced.placements
                      if p.x + p.width / 2 < sliced.width / 2}
            part_b = set(netlist.cells) - part_a
            floorplan.cut_nets = netlist.cut_size(part_a, part_b)
            floorplan.wirelength = global_route(floorplan, netlist)
            overflow = max(0.0, floorplan.width - interface.max_width) \
                + max(0.0, floorplan.height - interface.max_height)
            key = (overflow, floorplan.wirelength)
            if best_key is None or key < best_key:
                best, best_key = floorplan, key
        assert best is not None
        best.iterations = self.iterations
        return best

    def fits(self, floorplan: Floorplan,
             interface: FloorplanInterface) -> bool:
        """True when the plan respects the interface's shape bounds."""
        return (floorplan.width <= interface.max_width + 1e-9
                and floorplan.height <= interface.max_height + 1e-9)
