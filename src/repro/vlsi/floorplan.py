"""Floorplans and floorplan interfaces (Fig.3 inputs/outputs).

"The most important input is the interface description of the CUD
(cell under design), expressing non-functional requirements as, for
example, the shape of the CUD and the positions of the pin intervals on
the CUD's frame."  The chip planner's output is the *floorplan
contents* — an arrangement of the subcells — plus one *floorplan
interface* per subcell, which seeds the subcell's own planning at the
next hierarchy level (the Fig.5 delegation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PinInterval:
    """A pin interval on one edge of a cell frame."""

    edge: str          # 'north' | 'south' | 'east' | 'west'
    start: float       # offset along the edge
    end: float
    net: str = ""

    def length(self) -> float:
        """Extent of the interval along its edge."""
        return self.end - self.start


@dataclass(frozen=True)
class FloorplanInterface:
    """Non-functional requirements for planning one cell.

    ``max_width`` / ``max_height`` bound the cell's shape; ``origin``
    places it in the parent's coordinate system; ``pins`` are the pin
    intervals on the frame.
    """

    cell: str
    max_width: float
    max_height: float
    origin: tuple[float, float] = (0.0, 0.0)
    pins: tuple[PinInterval, ...] = ()

    @property
    def area_limit(self) -> float:
        """Maximum area available to the cell."""
        return self.max_width * self.max_height

    def to_dict(self) -> dict:
        """Plain-dict form for DOV payloads."""
        return {
            "cell": self.cell,
            "max_width": self.max_width,
            "max_height": self.max_height,
            "origin": list(self.origin),
            "pins": [{"edge": p.edge, "start": p.start, "end": p.end,
                      "net": p.net} for p in self.pins],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FloorplanInterface":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            cell=raw["cell"],
            max_width=raw["max_width"],
            max_height=raw["max_height"],
            origin=tuple(raw.get("origin", (0.0, 0.0))),
            pins=tuple(PinInterval(p["edge"], p["start"], p["end"],
                                   p.get("net", ""))
                       for p in raw.get("pins", ())),
        )


@dataclass(frozen=True)
class Placement:
    """One subcell placed inside its parent's floorplan."""

    cell: str
    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        """Occupied area."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Geometric centre (used for wirelength estimation)."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def overlaps(self, other: "Placement") -> bool:
        """True when two placements intersect with positive area."""
        return not (self.x + self.width <= other.x
                    or other.x + other.width <= self.x
                    or self.y + self.height <= other.y
                    or other.y + other.height <= self.y)


@dataclass
class Floorplan:
    """The planned arrangement of a CUD's subcells."""

    cud: str
    width: float
    height: float
    placements: dict[str, Placement] = field(default_factory=dict)
    cut_nets: int = 0
    wirelength: float = 0.0
    iterations: int = 1

    @property
    def area(self) -> float:
        """Bounding area of the floorplan."""
        return self.width * self.height

    @property
    def used_area(self) -> float:
        """Sum of the placed subcell areas."""
        return sum(p.area for p in self.placements.values())

    @property
    def utilisation(self) -> float:
        """used_area / area (1.0 = no dead space)."""
        return self.used_area / self.area if self.area else 0.0

    def validate(self) -> list[str]:
        """Geometric sanity: in-bounds, no overlaps.  Empty = valid."""
        problems = []
        eps = 1e-6
        items = list(self.placements.values())
        for placement in items:
            if placement.x < -eps or placement.y < -eps \
                    or placement.x + placement.width > self.width + eps \
                    or placement.y + placement.height > self.height + eps:
                problems.append(f"{placement.cell} out of bounds")
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                if a.overlaps(b):
                    problems.append(f"{a.cell} overlaps {b.cell}")
        return problems

    def subcell_interfaces(self) -> list[FloorplanInterface]:
        """One planning interface per placed subcell (Fig.3 output)."""
        return [FloorplanInterface(p.cell, p.width, p.height,
                                   origin=(p.x, p.y))
                for p in self.placements.values()]

    def to_dict(self) -> dict:
        """Plain-dict form for DOV payloads."""
        return {
            "cud": self.cud,
            "width": self.width,
            "height": self.height,
            "cut_nets": self.cut_nets,
            "wirelength": self.wirelength,
            "iterations": self.iterations,
            "placements": {
                name: [p.x, p.y, p.width, p.height]
                for name, p in self.placements.items()},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Floorplan":
        """Rebuild from :meth:`to_dict` output."""
        plan = cls(raw["cud"], raw["width"], raw["height"],
                   cut_nets=raw.get("cut_nets", 0),
                   wirelength=raw.get("wirelength", 0.0),
                   iterations=raw.get("iterations", 1))
        for name, (x, y, w, h) in raw.get("placements", {}).items():
            plan.placements[name] = Placement(name, x, y, w, h)
        return plan
