"""The seven design tools of Fig.2, executable on DOP contexts.

Each tool is a function ``tool(context, params)`` mutating the DOP's
working data — the form the DC level's :class:`ToolRegistry` expects.
The numbering follows Fig.2:

1. structure synthesis       behavior -> structure
2. repartitioning            structure -> structure
3. shape function generator  structure -> floor-plan estimates
4. pad frame editor          chip frame + pin intervals
5. chip planner toolbox      floor planning (see chip_planner module)
6. cell synthesis            standard cell -> mask layout
7. chip assembly             floorplan + layouts -> chip mask layout

The DOV payload conventions: a cell version carries ``cell``, ``level``
plus per-domain entries ``behavior`` / ``structure`` / ``shape_functions``
/ ``interface`` / ``floorplan`` / ``layout`` and derived scalars
``area``, ``width``, ``height``.
"""

from __future__ import annotations

from typing import Any

from repro.dc.design_manager import ToolRegistry
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    Constraint,
    DesignObjectType,
)
from repro.te.context import DopContext
from repro.util.errors import WorkflowError
from repro.util.rng import SeededRng
from repro.vlsi.chip_planner import ChipPlanner
from repro.vlsi.floorplan import Floorplan, FloorplanInterface, PinInterval
from repro.vlsi.netlist import NetList, synthetic_netlist
from repro.vlsi.shapes import ShapeFunction, shapes_for_area


# ---------------------------------------------------------------------------
# DOTs of the VLSI domain
# ---------------------------------------------------------------------------

def _cell_attributes() -> list[AttributeDef]:
    return [
        AttributeDef("cell", AttributeKind.STRING),
        AttributeDef("level", AttributeKind.STRING),
        AttributeDef("behavior", AttributeKind.JSON, required=False),
        AttributeDef("structure", AttributeKind.JSON, required=False),
        AttributeDef("shape_functions", AttributeKind.JSON, required=False),
        AttributeDef("interface", AttributeKind.JSON, required=False),
        AttributeDef("floorplan", AttributeKind.JSON, required=False),
        AttributeDef("layout", AttributeKind.JSON, required=False),
        AttributeDef("area", AttributeKind.FLOAT, required=False),
        AttributeDef("width", AttributeKind.FLOAT, required=False),
        AttributeDef("height", AttributeKind.FLOAT, required=False),
    ]


def _non_negative_dims() -> list[Constraint]:
    def check(data: dict[str, Any]) -> bool:
        for key in ("area", "width", "height"):
            value = data.get(key)
            if value is not None and value < 0:
                return False
        return True

    return [Constraint("non-negative-dimensions", check,
                       "area/width/height must be >= 0")]


def vlsi_dots() -> dict[str, DesignObjectType]:
    """The four-level DOT hierarchy: Chip ⊃ Module ⊃ Block ⊃ StandardCell."""
    std = DesignObjectType("StandardCell", _cell_attributes(),
                           constraints=_non_negative_dims())
    block = DesignObjectType("Block", _cell_attributes(),
                             parts={"cells": std},
                             constraints=_non_negative_dims())
    module = DesignObjectType("Module", _cell_attributes(),
                              parts={"blocks": block},
                              constraints=_non_negative_dims())
    chip = DesignObjectType("Chip", _cell_attributes(),
                            parts={"modules": module},
                            constraints=_non_negative_dims())
    return {"Chip": chip, "Module": module, "Block": block,
            "StandardCell": std}


# ---------------------------------------------------------------------------
# tool 1: structure synthesis
# ---------------------------------------------------------------------------

def structure_synthesis(context: DopContext,
                        params: dict[str, Any]) -> None:
    """Derive the structural description from the behavior (tool 1).

    Each behavioral operation becomes one subcell; connectivity is
    synthesised with locality skew (seeded via ``params['seed']``).
    """
    behavior = context.data.get("behavior")
    if not behavior or "operations" not in behavior:
        raise WorkflowError(
            "structure synthesis needs a behavioral description with "
            "'operations'")
    operations = behavior["operations"]
    cell = context.data.get("cell", "cud")
    subcells = [f"{cell}/{op}" for op in operations]
    rng = SeededRng(int(params.get("seed", 0)))
    netlist = synthetic_netlist(subcells, rng,
                                nets_per_cell=float(
                                    params.get("nets_per_cell", 1.5)))
    context.data["structure"] = {
        "subcells": subcells,
        "netlist": netlist.to_dict(),
    }


# ---------------------------------------------------------------------------
# tool 2: repartitioning
# ---------------------------------------------------------------------------

def repartitioning(context: DopContext, params: dict[str, Any]) -> None:
    """Regroup the structure into balanced partitions (tool 2).

    Copy-on-write: a structure arriving via checkout is frozen, so
    the tool derives a new structure dict instead of mutating it.
    """
    structure = context.data.get("structure")
    if not structure:
        raise WorkflowError("repartitioning needs a structure")
    netlist = NetList.from_dict(structure["netlist"])
    groups = int(params.get("groups", 2))
    partitions: list[list[str]] = [[] for _ in range(groups)]
    # round-robin by descending degree keeps partitions balanced while
    # clustering highly connected cells first
    ranked = sorted(netlist.cells, key=lambda c: -netlist.degree(c))
    for i, cell_name in enumerate(ranked):
        partitions[i % groups].append(cell_name)
    context.data["structure"] = {**structure, "partitions": partitions}


# ---------------------------------------------------------------------------
# tool 3: shape function generator
# ---------------------------------------------------------------------------

def shape_function_generator(context: DopContext,
                             params: dict[str, Any]) -> None:
    """Estimate shape functions for every subcell (tool 3)."""
    structure = context.data.get("structure")
    if not structure:
        raise WorkflowError("shape function generation needs a structure")
    areas: dict[str, float] = params.get("areas", {})
    default_area = float(params.get("default_area", 4.0))
    aspects = tuple(params.get("aspects", (0.5, 1.0, 2.0)))
    functions = {}
    for subcell in structure["subcells"]:
        area = float(areas.get(subcell, default_area))
        functions[subcell] = shapes_for_area(subcell, area,
                                             aspects).to_dict()
    context.data["shape_functions"] = functions


# ---------------------------------------------------------------------------
# tool 4: pad frame editor
# ---------------------------------------------------------------------------

def pad_frame_editor(context: DopContext, params: dict[str, Any]) -> None:
    """Fix the CUD frame and pin intervals (tool 4)."""
    cell = context.data.get("cell", "cud")
    max_width = float(params.get("max_width", 100.0))
    max_height = float(params.get("max_height", 100.0))
    pin_count = int(params.get("pins", 4))
    pins = []
    edges = ("north", "east", "south", "west")
    for i in range(pin_count):
        edge = edges[i % 4]
        extent = max_width if edge in ("north", "south") else max_height
        slot = extent / max(1, (pin_count + 3) // 4)
        offset = (i // 4) * slot
        pins.append(PinInterval(edge, round(offset, 3),
                                round(min(extent, offset + slot * 0.5), 3),
                                net=f"io-{i}"))
    interface = FloorplanInterface(cell, max_width, max_height,
                                   pins=tuple(pins))
    context.data["interface"] = interface.to_dict()


# ---------------------------------------------------------------------------
# tool 5: chip planner
# ---------------------------------------------------------------------------

def chip_planner_tool(context: DopContext, params: dict[str, Any]) -> None:
    """Plan the CUD's floorplan (tool 5; see Fig.3).

    Inputs from the context: structure (module and net list), shape
    functions, interface.  Outputs: floorplan contents + derived
    dimensions; the subcell interfaces are available via the floorplan.
    """
    structure = context.data.get("structure")
    shape_raw = context.data.get("shape_functions")
    interface_raw = context.data.get("interface")
    if not structure:
        raise WorkflowError("chip planning needs a structure")
    if not shape_raw:
        raise WorkflowError("chip planning needs shape functions")
    if not interface_raw:
        raise WorkflowError("chip planning needs an interface description")
    netlist = NetList.from_dict(structure["netlist"])
    shape_functions = {name: ShapeFunction.from_dict(raw)
                       for name, raw in shape_raw.items()}
    interface = FloorplanInterface.from_dict(interface_raw)
    planner = ChipPlanner(iterations=int(params.get("iterations", 3)),
                          seed=int(params.get("seed", 0)))
    floorplan = planner.plan(context.data.get("cell", "cud"), netlist,
                             shape_functions, interface)
    context.data["floorplan"] = floorplan.to_dict()
    context.data["width"] = floorplan.width
    context.data["height"] = floorplan.height
    context.data["area"] = round(floorplan.area, 3)


# ---------------------------------------------------------------------------
# tool 6: cell synthesis
# ---------------------------------------------------------------------------

def cell_synthesis(context: DopContext, params: dict[str, Any]) -> None:
    """Produce the mask layout of a standard cell (tool 6)."""
    area = context.data.get("area")
    if area is None:
        area = float(params.get("area", 4.0))
        context.data["area"] = area
    aspect = float(params.get("aspect", 1.0))
    width = round((area * aspect) ** 0.5, 3)
    height = round(area / width, 3) if width else 0.0
    context.data["layout"] = {
        "kind": "standard-cell",
        "rects": [[0.0, 0.0, width, height]],
        "width": width,
        "height": height,
    }
    context.data["width"] = width
    context.data["height"] = height


# ---------------------------------------------------------------------------
# tool 7: chip assembly
# ---------------------------------------------------------------------------

def chip_assembly(context: DopContext, params: dict[str, Any]) -> None:
    """Assemble the chip mask layout from the floorplan (tool 7)."""
    floorplan_raw = context.data.get("floorplan")
    if not floorplan_raw:
        raise WorkflowError("chip assembly needs a floorplan")
    floorplan = Floorplan.from_dict(floorplan_raw)
    problems = floorplan.validate()
    if problems:
        raise WorkflowError(
            f"chip assembly rejected invalid floorplan: {problems}")
    rects = [[p.x, p.y, p.width, p.height]
             for p in floorplan.placements.values()]
    context.data["layout"] = {
        "kind": "chip",
        "rects": rects,
        "width": floorplan.width,
        "height": floorplan.height,
        "utilisation": round(floorplan.utilisation, 4),
    }
    context.data["width"] = floorplan.width
    context.data["height"] = floorplan.height
    context.data["area"] = round(floorplan.area, 3)


# ---------------------------------------------------------------------------
# verification helper (used by TestToolFeature in specifications)
# ---------------------------------------------------------------------------

def design_rule_check(data: dict[str, Any],
                      min_utilisation: float = 0.0) -> bool:
    """A simple DRC: the floorplan is geometrically valid.

    Used as the 'test tool' of Sect.4.1's complicated features.
    """
    floorplan_raw = data.get("floorplan")
    if not floorplan_raw:
        return False
    floorplan = Floorplan.from_dict(floorplan_raw)
    if floorplan.validate():
        return False
    return floorplan.utilisation >= min_utilisation


#: default simulated running times (minutes) per tool — DOPs are
#: long-duration transactions ("several hours", Sect.4.3)
TOOL_DURATIONS: dict[str, float] = {
    "structure_synthesis": 60.0,
    "repartitioning": 30.0,
    "shape_function_generator": 20.0,
    "pad_frame_editor": 15.0,
    "chip_planner": 90.0,
    "cell_synthesis": 45.0,
    "chip_assembly": 120.0,
}

#: Fig.2's tool numbering
TOOL_NUMBERS: dict[str, int] = {
    "structure_synthesis": 1,
    "repartitioning": 2,
    "shape_function_generator": 3,
    "pad_frame_editor": 4,
    "chip_planner": 5,
    "cell_synthesis": 6,
    "chip_assembly": 7,
}


def register_vlsi_tools(registry: ToolRegistry) -> None:
    """Register tools 1-7 under their Fig.2 names."""
    registry.register("structure_synthesis", structure_synthesis,
                      TOOL_DURATIONS["structure_synthesis"])
    registry.register("repartitioning", repartitioning,
                      TOOL_DURATIONS["repartitioning"])
    registry.register("shape_function_generator", shape_function_generator,
                      TOOL_DURATIONS["shape_function_generator"])
    registry.register("pad_frame_editor", pad_frame_editor,
                      TOOL_DURATIONS["pad_frame_editor"])
    registry.register("chip_planner", chip_planner_tool,
                      TOOL_DURATIONS["chip_planner"])
    registry.register("cell_synthesis", cell_synthesis,
                      TOOL_DURATIONS["cell_synthesis"])
    registry.register("chip_assembly", chip_assembly,
                      TOOL_DURATIONS["chip_assembly"])
