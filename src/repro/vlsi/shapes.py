"""Shape functions (tool 3 of Fig.2).

"These computations are based on estimated information about its
subcells (i.e., shape functions indicating the possible shapes of the
subcells provided by tool 3)."  A shape function is the classic
floorplanning staircase: the set of feasible (width, height)
realisations of a cell.  Chip planning's *sizing* step picks one
alternative per subcell so everything fits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Shape:
    """One feasible (width, height) realisation."""

    width: float
    height: float

    @property
    def area(self) -> float:
        """width × height."""
        return self.width * self.height

    @property
    def aspect(self) -> float:
        """width / height."""
        return self.width / self.height if self.height else float("inf")

    def rotated(self) -> "Shape":
        """The 90°-rotated alternative."""
        return Shape(self.height, self.width)


class ShapeFunction:
    """The set of feasible shapes of one cell (dominated shapes pruned).

    A shape dominates another when it is no wider *and* no taller; the
    kept alternatives form the staircase floorplanners work with.
    """

    def __init__(self, cell: str, shapes: list[Shape]) -> None:
        if not shapes:
            raise ValueError(f"shape function of {cell!r} needs at least "
                             f"one shape")
        self.cell = cell
        self.shapes = self._prune(shapes)

    @staticmethod
    def _prune(shapes: list[Shape]) -> list[Shape]:
        # sorted by (width, height): a shape is non-dominated iff it is
        # strictly lower than every narrower-or-equal shape kept so far,
        # so kept heights decrease monotonically along the staircase.
        ordered = sorted(set(shapes), key=lambda s: (s.width, s.height))
        kept: list[Shape] = []
        for shape in ordered:
            if not kept or shape.height < kept[-1].height:
                kept.append(shape)
        return kept

    # -- queries ----------------------------------------------------------------

    def min_area(self) -> float:
        """Smallest achievable area."""
        return min(s.area for s in self.shapes)

    def narrowest(self) -> Shape:
        """The alternative with the smallest width."""
        return min(self.shapes, key=lambda s: s.width)

    def best_for(self, max_width: float | None = None,
                 max_height: float | None = None) -> Shape | None:
        """Smallest-area alternative fitting the given bounds."""
        fitting = [s for s in self.shapes
                   if (max_width is None or s.width <= max_width)
                   and (max_height is None or s.height <= max_height)]
        if not fitting:
            return None
        return min(fitting, key=lambda s: s.area)

    # -- composition (used by sizing) ----------------------------------------------

    def beside(self, other: "ShapeFunction",
               name: str = "") -> "ShapeFunction":
        """Shape function of self and other placed side by side."""
        combos = [Shape(a.width + b.width, max(a.height, b.height))
                  for a in self.shapes for b in other.shapes]
        return ShapeFunction(name or f"{self.cell}|{other.cell}", combos)

    def stacked(self, other: "ShapeFunction",
                name: str = "") -> "ShapeFunction":
        """Shape function of self placed on top of other."""
        combos = [Shape(max(a.width, b.width), a.height + b.height)
                  for a in self.shapes for b in other.shapes]
        return ShapeFunction(name or f"{self.cell}/{other.cell}", combos)

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form for DOV payloads."""
        return {"cell": self.cell,
                "shapes": [[s.width, s.height] for s in self.shapes]}

    @classmethod
    def from_dict(cls, raw: dict) -> "ShapeFunction":
        """Rebuild from :meth:`to_dict` output."""
        return cls(raw["cell"], [Shape(w, h) for w, h in raw["shapes"]])


def shapes_for_area(cell: str, area: float,
                    aspects: tuple[float, ...] = (0.5, 1.0, 2.0)
                    ) -> ShapeFunction:
    """Generate the staircase of a cell from its area demand.

    For each target aspect ratio a (width/height), width = sqrt(area*a),
    height = area/width — the standard estimation tool-3 performs.
    """
    shapes = []
    for aspect in aspects:
        width = (area * aspect) ** 0.5
        height = area / width
        shapes.append(Shape(round(width, 3), round(height, 3)))
    return ShapeFunction(cell, shapes)
