"""Module and net lists (Fig.3 inputs).

"Further information about the CUD (cell under design) and its
subcells, e.g., the connections of the subcells, is decoded in the
module and net list."  A :class:`NetList` records which subcells each
net connects; the chip planner's bipartitioning minimises the number of
nets cut by a partition.

Everything serialises to/from plain dicts so net lists travel inside
DOV payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class Net:
    """One net connecting two or more subcells."""

    name: str
    cells: tuple[str, ...]

    def connects(self, cell: str) -> bool:
        """True when *cell* is on this net."""
        return cell in self.cells

    def crosses(self, part_a: set[str], part_b: set[str]) -> bool:
        """True when the net has pins in both partitions (is 'cut')."""
        return (any(c in part_a for c in self.cells)
                and any(c in part_b for c in self.cells))


@dataclass
class NetList:
    """Subcells of a CUD plus the nets connecting them."""

    cells: list[str]
    nets: list[Net] = field(default_factory=list)

    def __post_init__(self) -> None:
        known = set(self.cells)
        for net in self.nets:
            unknown = [c for c in net.cells if c not in known]
            if unknown:
                raise ValueError(
                    f"net {net.name!r} references unknown cells {unknown}")

    # -- analysis -----------------------------------------------------------

    def nets_of(self, cell: str) -> list[Net]:
        """All nets touching *cell*."""
        return [n for n in self.nets if n.connects(cell)]

    def cut_size(self, part_a: set[str], part_b: set[str]) -> int:
        """Number of nets crossing the (part_a, part_b) partition."""
        return sum(1 for n in self.nets if n.crosses(part_a, part_b))

    def connectivity(self, cell_a: str, cell_b: str) -> int:
        """Number of nets connecting two cells directly."""
        return sum(1 for n in self.nets
                   if n.connects(cell_a) and n.connects(cell_b))

    def degree(self, cell: str) -> int:
        """Number of nets touching *cell*."""
        return len(self.nets_of(cell))

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form for DOV payloads."""
        return {
            "cells": list(self.cells),
            "nets": [{"name": n.name, "cells": list(n.cells)}
                     for n in self.nets],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "NetList":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            cells=list(raw["cells"]),
            nets=[Net(n["name"], tuple(n["cells"])) for n in raw["nets"]],
        )


def synthetic_netlist(cells: list[str], rng: SeededRng,
                      nets_per_cell: float = 1.5,
                      fanout: int = 3) -> NetList:
    """Generate a seeded net list with locality-skewed connectivity.

    Cells adjacent in the list are more likely to share nets, which
    gives bipartitioning something meaningful to optimise.
    """
    if len(cells) < 2:
        return NetList(cells=list(cells), nets=[])
    total_nets = max(1, int(len(cells) * nets_per_cell))
    nets = []
    for i in range(total_nets):
        anchor = rng.randint(0, len(cells) - 1)
        size = rng.randint(2, min(fanout, len(cells)))
        members = {cells[anchor]}
        while len(members) < size:
            # skew towards neighbours of the anchor
            if rng.bernoulli(0.7):
                offset = rng.randint(-2, 2)
                index = max(0, min(len(cells) - 1, anchor + offset))
            else:
                index = rng.randint(0, len(cells) - 1)
            members.add(cells[index])
        nets.append(Net(f"net-{i}", tuple(sorted(members))))
    return NetList(cells=list(cells), nets=nets)
