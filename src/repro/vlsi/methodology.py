"""The PLAYOUT design methodology: design plane, scripts, constraints.

Sect.3 introduces the design plane of Fig.2: four design domains
(behavior, structure, floor plan, mask layout) crossed with the cell
hierarchy, traversed left-to-right by numbered tools.  This module
encodes:

* the domains and the arrows of Fig.2 (:data:`DESIGN_PLANE_ARROWS`);
* a full traversal of the plane for a given cell hierarchy
  (:func:`traverse_design_plane`) — the F2 regeneration;
* the VLSI domain's DOP-ordering constraints mentioned in Sect.4.2
  (:func:`playout_constraints`);
* the two sample scripts of Fig.6 (:func:`chip_design_script`,
  :func:`alternative_paths_script`) and the chip-planning work flow of
  Fig.3 (:func:`chip_planning_script`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dc.constraints import DomainConstraintSet, FollowedBy, NotBefore
from repro.dc.script import (
    Alternative,
    DaOpStep,
    DopStep,
    Iteration,
    Open,
    Script,
    Sequence,
)
from repro.vlsi.cells import Cell, CellHierarchy, CellLevel
from repro.vlsi.tools import TOOL_NUMBERS


class DesignDomain(str, Enum):
    """The four design domains of Fig.2."""

    BEHAVIOR = "behavior"
    STRUCTURE = "structure"
    FLOOR_PLAN = "floor_plan"
    MASK_LAYOUT = "mask_layout"


@dataclass(frozen=True)
class PlaneArrow:
    """One arrow of the design plane: a tool moving design information."""

    tool: str
    number: int
    source: DesignDomain
    target: DesignDomain
    levels: tuple[CellLevel, ...]   # hierarchy levels the tool applies at


#: the arrows of Fig.2, tool numbers as printed in the figure
DESIGN_PLANE_ARROWS: tuple[PlaneArrow, ...] = (
    PlaneArrow("structure_synthesis", 1, DesignDomain.BEHAVIOR,
               DesignDomain.STRUCTURE, (CellLevel.CHIP,)),
    PlaneArrow("repartitioning", 2, DesignDomain.STRUCTURE,
               DesignDomain.STRUCTURE,
               (CellLevel.CHIP, CellLevel.MODULE, CellLevel.BLOCK)),
    PlaneArrow("shape_function_generator", 3, DesignDomain.STRUCTURE,
               DesignDomain.FLOOR_PLAN,
               (CellLevel.MODULE, CellLevel.BLOCK,
                CellLevel.STANDARD_CELL)),
    PlaneArrow("pad_frame_editor", 4, DesignDomain.FLOOR_PLAN,
               DesignDomain.FLOOR_PLAN, (CellLevel.CHIP,)),
    PlaneArrow("chip_planner", 5, DesignDomain.FLOOR_PLAN,
               DesignDomain.FLOOR_PLAN,
               (CellLevel.CHIP, CellLevel.MODULE, CellLevel.BLOCK)),
    PlaneArrow("cell_synthesis", 6, DesignDomain.STRUCTURE,
               DesignDomain.MASK_LAYOUT, (CellLevel.STANDARD_CELL,)),
    PlaneArrow("chip_assembly", 7, DesignDomain.FLOOR_PLAN,
               DesignDomain.MASK_LAYOUT, (CellLevel.CHIP,)),
)


@dataclass(frozen=True)
class TraversalStep:
    """One tool application during a design-plane traversal."""

    order: int
    tool: str
    number: int
    cell: str
    level: CellLevel
    source: DesignDomain
    target: DesignDomain


def traverse_design_plane(hierarchy: CellHierarchy) -> list[TraversalStep]:
    """Full left-to-right traversal of the plane for *hierarchy*.

    "the design process starts with a behavioral description of the
    circuit to be designed and then traverses the design plane from
    left to right" — structure synthesis at the chip, shape estimation
    bottom-up, pad frame, recursive top-down chip planning, standard
    cell synthesis, and final chip assembly.
    """
    steps: list[TraversalStep] = []
    order = 0

    def add(tool: str, cell: Cell, source: DesignDomain,
            target: DesignDomain) -> None:
        nonlocal order
        order += 1
        steps.append(TraversalStep(order, tool, TOOL_NUMBERS[tool],
                                   cell.name, cell.level, source, target))

    root = hierarchy.root
    add("structure_synthesis", root, DesignDomain.BEHAVIOR,
        DesignDomain.STRUCTURE)
    # shape estimation bottom-up: standard cells, then blocks, modules
    for level in (CellLevel.STANDARD_CELL, CellLevel.BLOCK,
                  CellLevel.MODULE):
        for cell in hierarchy.cells(level):
            add("shape_function_generator", cell, DesignDomain.STRUCTURE,
                DesignDomain.FLOOR_PLAN)
    add("pad_frame_editor", root, DesignDomain.FLOOR_PLAN,
        DesignDomain.FLOOR_PLAN)
    # chip planning top-down: "a floorplan is computed for each cell of
    # the hierarchy by recursively applying the chip planner"
    for level in (CellLevel.CHIP, CellLevel.MODULE, CellLevel.BLOCK):
        for cell in hierarchy.cells(level):
            if cell.children:
                add("chip_planner", cell, DesignDomain.FLOOR_PLAN,
                    DesignDomain.FLOOR_PLAN)
    for cell in hierarchy.cells(CellLevel.STANDARD_CELL):
        add("cell_synthesis", cell, DesignDomain.STRUCTURE,
            DesignDomain.MASK_LAYOUT)
    add("chip_assembly", root, DesignDomain.FLOOR_PLAN,
        DesignDomain.MASK_LAYOUT)
    return steps


def traversal_matrix(steps: list[TraversalStep]
                     ) -> dict[tuple[str, str], int]:
    """(domain, level) -> number of tool applications (the F2 table)."""
    matrix: dict[tuple[str, str], int] = {}
    for step in steps:
        key = (step.target.value, step.level.name)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix


def playout_constraints() -> DomainConstraintSet:
    """The Sect.4.2 ordering constraints of the VLSI domain.

    Verbatim from the paper: chip assembly "must not be applied before
    a DOP of another type has successfully completed (e.g., structure
    synthesis)", and "a certain DOP must always be followed by another
    DOP of a specific type (e.g. pad frame editor followed by chip
    planner)."
    """
    return DomainConstraintSet([
        NotBefore("structure_synthesis", "chip_assembly"),
        NotBefore("structure_synthesis", "chip_planner"),
        NotBefore("shape_function_generator", "chip_planner"),
        NotBefore("chip_planner", "chip_assembly"),
        FollowedBy("pad_frame_editor", "chip_planner"),
    ], domain="vlsi-playout")


def chip_design_script() -> Script:
    """Fig.6a: "A partially undetermined script".

    "a DA which is to design a chip starts with the structure synthesis
    and ends with a chip assembly.  A script which fixes these two
    operations and allows for arbitrary intermediate steps."
    """
    return Script(Sequence(
        DopStep("structure_synthesis"),
        Open(name="intermediate-steps"),
        DopStep("chip_assembly"),
    ), name="fig6a-partially-undetermined")


def alternative_paths_script() -> Script:
    """Fig.6b: "Alternative paths in a script".

    "after shape function generation, the designer has to decide how to
    proceed choosing among three alternative methods."
    """
    return Script(Sequence(
        DopStep("shape_function_generator"),
        Alternative(
            DopStep("chip_planner"),
            Sequence(DopStep("repartitioning"), DopStep("chip_planner")),
            Sequence(DopStep("pad_frame_editor"), DopStep("chip_planner")),
            name="three-methods",
        ),
    ), name="fig6b-alternative-paths")


def chip_planning_script(max_rounds: int = 4) -> Script:
    """The Fig.3 chip-planning work flow as a DA script.

    Plan, evaluate, and optionally re-iterate "in order to achieve
    optimal space exploitation"; finally propagate the floorplan.
    """
    return Script(Sequence(
        Iteration(
            Sequence(DopStep("chip_planner"), DaOpStep("Evaluate")),
            max_rounds=max_rounds,
            name="replan-until-satisfied",
        ),
        DaOpStep("Propagate"),
    ), name="fig3-chip-planning")


def full_design_script() -> Script:
    """An end-to-end chip design honouring the PLAYOUT constraints."""
    return Script(Sequence(
        DopStep("structure_synthesis"),
        DopStep("shape_function_generator"),
        DopStep("pad_frame_editor"),
        DopStep("chip_planner"),
        DaOpStep("Evaluate"),
        DopStep("chip_assembly"),
    ), name="full-chip-design")
