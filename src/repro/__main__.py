"""Command-line entry point: ``python -m repro [F1 T1 A2 ...]``.

With no arguments, regenerates and prints every figure (F1-F8),
experiment (T1-T9) and ablation (A1-A3); with arguments, only the named
ones.  ``python -m repro scorecard`` checks every expected shape;
``python -m repro perf`` runs the zero-copy microbenchmark harness and
emits ``BENCH_PERF.json`` (see ``docs/performance.md``).
"""

from __future__ import annotations

import sys

from repro.bench import ALL_ABLATIONS, ALL_EXPERIMENTS, ALL_FIGURES


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] == "scenario":
        from repro.scenario.cli import scenario_main

        return scenario_main(args[1:])
    if args and args[0] == "trace":
        from repro.scenario.cli import trace_main

        return trace_main(args[1:])
    wanted = {a.upper() for a in args}
    if wanted & {"--SCORECARD", "SCORECARD"}:
        from repro.bench.scorecard import run_scorecard

        card = run_scorecard()
        print(card.render())
        return 1 if card.data["failures"] else 0
    if wanted & {"--PERF", "PERF"}:
        from repro.bench.perf import DEFAULT_ARTIFACT, render, run_perf

        report = run_perf(quick="--QUICK" in wanted or "QUICK" in wanted,
                          emit_path=DEFAULT_ARTIFACT)
        print(render(report))
        print(f"note: wrote {DEFAULT_ARTIFACT}")
        return 0 if report["acceptance"]["ok"] else 1
    drivers = {**ALL_FIGURES, **ALL_EXPERIMENTS, **ALL_ABLATIONS}
    unknown = wanted - set(drivers)
    if unknown:
        print(f"unknown experiments: {sorted(unknown)}; "
              f"available: {sorted(drivers)}, 'scorecard' or 'perf'")
        return 2
    for name, driver in drivers.items():
        if wanted and name not in wanted:
            continue
        print(driver().render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
