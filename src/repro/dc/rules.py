"""Event-condition-action rules for asynchronously occurring events.

"Cooperation relationships among DAs lead to asynchronously occurring
events within a DA (e.g., Propose or Require operations), generally
asking the receiving DA to react or reply ...  Those kinds of
specifications may be best expressed as (event, condition, action)
rules" (Sect.4.2).  The paper's example:

    WHEN Require IF (required DOV available) THEN Propagate

is expressed here as::

    EcaRule("on-require", event="Require",
            condition=lambda env: env["qualifying_dov"] is not None,
            action=lambda env: env["da"].propagate(env["qualifying_dov"]))

The environment dict is assembled by the event's dispatcher (the DM or
the CM adapter) and carries the event payload plus handles to the DA's
operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import RuleError

RuleEnv = dict[str, Any]


@dataclass
class EcaRule:
    """One event-condition-action rule."""

    name: str
    event: str
    condition: Callable[[RuleEnv], bool]
    action: Callable[[RuleEnv], Any]
    #: lower runs earlier when several rules match one event
    priority: int = 0
    enabled: bool = True

    def matches(self, event: str, env: RuleEnv) -> bool:
        """True when this rule should fire for *event* in *env*."""
        if not self.enabled or self.event != event:
            return False
        try:
            return bool(self.condition(env))
        except Exception as exc:
            raise RuleError(
                f"rule {self.name!r}: condition raised {exc!r}") from exc


@dataclass
class RuleFiring:
    """Record of one rule execution (kept for DM log / experiments)."""

    rule: str
    event: str
    result: Any = None
    error: str = ""


class RuleEngine:
    """Per-DA registry and dispatcher of ECA rules."""

    def __init__(self) -> None:
        self._rules: list[EcaRule] = []
        self.firings: list[RuleFiring] = []

    def register(self, rule: EcaRule) -> EcaRule:
        """Add a rule (names must be unique)."""
        if any(r.name == rule.name for r in self._rules):
            raise RuleError(f"rule {rule.name!r} already registered")
        self._rules.append(rule)
        return rule

    def remove(self, name: str) -> bool:
        """Drop a rule by name; True when it existed."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.name != name]
        return len(self._rules) < before

    def rules_for(self, event: str) -> list[EcaRule]:
        """Enabled rules listening on *event*, in priority order."""
        matching = [r for r in self._rules if r.enabled and r.event == event]
        return sorted(matching, key=lambda r: r.priority)

    def dispatch(self, event: str, env: RuleEnv) -> list[RuleFiring]:
        """Fire all matching rules; returns the firing records.

        A failing action does not prevent later rules from firing — the
        failure is recorded on the firing (rules are exception handlers,
        not transactions).
        """
        fired: list[RuleFiring] = []
        for rule in self.rules_for(event):
            if not rule.matches(event, env):
                continue
            firing = RuleFiring(rule.name, event)
            try:
                firing.result = rule.action(env)
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                firing.error = repr(exc)
            fired.append(firing)
            self.firings.append(firing)
        return fired

    def __len__(self) -> int:
        return len(self._rules)


def require_propagate_rule(find_qualifying: Callable[[RuleEnv], Any],
                           propagate: Callable[[RuleEnv, Any], Any],
                           name: str = "when-require-propagate") -> EcaRule:
    """Build the paper's flagship rule.

    ``find_qualifying(env)`` returns a qualifying DOV (or None) for the
    incoming Require; ``propagate(env, dov)`` performs the Propagate.
    """

    def condition(env: RuleEnv) -> bool:
        env["_qualifying"] = find_qualifying(env)
        return env["_qualifying"] is not None

    def action(env: RuleEnv) -> Any:
        return propagate(env, env["_qualifying"])

    return EcaRule(name, "Require", condition, action)
