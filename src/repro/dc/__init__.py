"""Design Control level: scripts, constraints, ECA rules, design manager.

Implements the paper's DC level (Sect.4.2, Sect.5.3): per-DA work-flow
specification via scripts with alternatives / parallel branches /
iterations / open segments, domain-wide DOP ordering constraints, ECA
rules for asynchronously occurring cooperation events, and the design
manager with recoverable script execution.
"""

from repro.dc.constraints import (
    DomainConstraint,
    DomainConstraintSet,
    FollowedBy,
    NotBefore,
)
from repro.dc.design_manager import (
    DaBinding,
    DesignManager,
    DesignerPolicy,
    DmStatus,
    ToolRegistry,
)
from repro.dc.rules import EcaRule, RuleEngine, RuleFiring, require_propagate_rule
from repro.dc.script import (
    ActionKind,
    Alternative,
    DaOpStep,
    DopStep,
    EnabledAction,
    Iteration,
    Open,
    Parallel,
    Script,
    ScriptCursor,
    ScriptNode,
    Sequence,
    completely_open_script,
)

__all__ = [
    "ActionKind",
    "Alternative",
    "DaBinding",
    "DaOpStep",
    "DesignManager",
    "DesignerPolicy",
    "DmStatus",
    "DomainConstraint",
    "DomainConstraintSet",
    "DopStep",
    "EcaRule",
    "EnabledAction",
    "FollowedBy",
    "Iteration",
    "NotBefore",
    "Open",
    "Parallel",
    "RuleEngine",
    "RuleFiring",
    "Script",
    "ScriptCursor",
    "ScriptNode",
    "Sequence",
    "ToolRegistry",
    "completely_open_script",
    "require_propagate_rule",
]
