"""The design manager (DM).

"The DM has to enforce the work flow within its DA and to handle
external events caused by cooperating DAs" (Sect.5.3).  One DM instance
runs per DA on that DA's workstation.  Its duties, each implemented
here:

* **work-flow management** — interpret the DA's script via
  :class:`~repro.dc.script.ScriptCursor`; "whenever the work flow is
  unambiguous, the DM provides automatic execution", otherwise a
  :class:`DesignerPolicy` (the modelled designer) supplies decisions;
* **DOP execution** — Begin-of-DOP, checkout of the input DOVs, tool
  processing, checkin, End-of-DOP, with domain-constraint admission
  before every start;
* **logging** — "a log entry capturing all DOP parameters is written
  for each start and finish of a DOP execution", plus every script
  decision, to the workstation's stable log;
* **external events** — specification modification (restart, possibly
  from a designer-chosen DOV) and withdrawal of a pre-released DOV
  (log analysis: was it used?);
* **failure handling** — after a workstation crash, rebuild the script
  position by replaying the persistent log (forward recovery) and
  resume the in-flight DOP from its recovery point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.dc.constraints import DomainConstraintSet
from repro.dc.rules import RuleEngine
from repro.dc.script import (
    ActionKind,
    DaOpStep,
    DopStep,
    EnabledAction,
    Iteration,
    Script,
)
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.te.context import DopContext
from repro.te.dop import DesignOperation
from repro.te.transaction_manager import CheckinResult, ClientTM
from repro.util.errors import (
    ConstraintViolationError,
    RecoveryError,
    WorkflowError,
)
from repro.util.trace import EventTrace, Level


class ToolRegistry:
    """Executable design tools, keyed by the tool names scripts use."""

    def __init__(self) -> None:
        self._tools: dict[str, Callable[[DopContext, dict[str, Any]],
                                        None]] = {}
        self._durations: dict[str, float] = {}

    def register(self, name: str,
                 fn: Callable[[DopContext, dict[str, Any]], None],
                 duration: float = 10.0) -> None:
        """Register tool *name*; *fn* mutates the DOP context in place."""
        self._tools[name] = fn
        self._durations[name] = duration

    def run(self, name: str, context: DopContext,
            params: dict[str, Any]) -> None:
        """Apply tool *name* to *context*."""
        try:
            fn = self._tools[name]
        except KeyError:
            raise WorkflowError(f"no tool registered as {name!r}") from None
        fn(context, params)

    def duration(self, name: str, default: float = 10.0) -> float:
        """Simulated running time of *name*."""
        return self._durations.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def names(self) -> list[str]:
        """Registered tool names, sorted."""
        return sorted(self._tools)


class DaBinding(Protocol):
    """What the DM needs to know about its DA (implemented at AC level)."""

    @property
    def da_id(self) -> str:
        """The DA's identifier."""
        ...

    @property
    def dot_name(self) -> str:
        """The DOT new versions are checked in under."""
        ...

    def pick_inputs(self, step: DopStep) -> list[str]:
        """DOV ids to check out as inputs of *step*."""
        ...

    def da_operation(self, operation: str, params: dict[str, Any]) -> Any:
        """Execute an AC-level DA operation embedded in the script."""
        ...


class DesignerPolicy:
    """Default modelled designer: fully automatic where possible.

    "Whenever the work flow is unambiguous, the DM provides automatic
    execution" — this base policy also resolves the ambiguous points
    with neutral defaults (first alternative, exit loops, close open
    segments, abort failed checkins), so scripts run unattended.
    Workload agents and tests override individual decisions.
    """

    def choose_enabled(self,
                       actions: list[EnabledAction]) -> EnabledAction:
        """Pick which of several concurrently enabled actions runs next."""
        return actions[0]

    def choose_alternative(self, action: EnabledAction) -> int:
        """Pick a path index for an Alternative."""
        return 0

    def loop_decision(self, action: EnabledAction) -> str:
        """'again' or 'exit' for an Iteration that finished a round."""
        return "exit"

    def open_decision(self, action: EnabledAction) -> Any:
        """('insert', tool) or 'close' for an Open segment."""
        return "close"

    def dop_params(self, step: DopStep) -> dict[str, Any]:
        """Start parameters for a DOP ("the designer has to specify
        input parameters for the design tools", Sect.5.1)."""
        return dict(step.params)

    def on_checkin_failure(self, step: DopStep, reason: str) -> str:
        """'retry' | 'skip' | 'stop' after the paper's checkin-failure."""
        return "stop"


@dataclass
class DmStatus:
    """Snapshot of a DM's progress (examples/benchmarks print this)."""

    da_id: str
    done: bool
    stopped: bool
    executed_dops: int
    aborted_dops: int
    pending_actions: list[str] = field(default_factory=list)


@dataclass
class PendingDop:
    """A DOP started under the concurrent kernel, awaiting its finish.

    :meth:`DesignManager.start_step` performs Begin-of-DOP and the
    checkouts at the start instant and hands this descriptor to the
    driver, which schedules :meth:`DesignManager.finish_step` at
    ``start + remaining`` — the tool's processing occupies a real span
    of simulated time during which other DAs' events interleave.
    """

    dop: DesignOperation
    action: EnabledAction
    step: DopStep
    params: dict[str, Any]
    #: full tool duration of the step
    duration: float
    #: work still to apply (smaller than *duration* after a recovery)
    remaining: float
    #: set once the tool work/mutation was applied (guards re-checkin)
    worked: bool = False


class DesignManager:
    """Work-flow executor for one DA on one workstation."""

    def __init__(self, binding: DaBinding, client_tm: ClientTM,
                 script: Script, tools: ToolRegistry,
                 constraints: DomainConstraintSet | None = None,
                 rules: RuleEngine | None = None,
                 trace: EventTrace | None = None) -> None:
        self.binding = binding
        self.client_tm = client_tm
        self.tools = tools
        self.constraints = constraints if constraints is not None \
            else DomainConstraintSet()
        self.rules = rules if rules is not None else RuleEngine()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.clock = client_tm.clock
        node = client_tm.node
        self.node = node

        # persistent script: survives workstation crashes (Sect.5.3
        # requires "a persistent script")
        node.stable.put(self._script_key(), script)
        self.script = script
        self.cursor = script.cursor()

        # persistent DM log
        self.log = WriteAheadLog(f"dm-log:{binding.da_id}")
        node.on_crash.append(self._on_crash)

        #: set when an external event or failure needs designer attention
        self.stopped = False
        self.stop_reason = ""
        #: designer-chosen restart basis after a spec modification
        self.restart_dov: str | None = None
        self.executed_dops = 0
        self.aborted_dops = 0
        #: tool names of successfully completed DOPs, in order
        self.executed_tools: list[str] = []
        #: the DOP currently being executed, if any (volatile)
        self._in_flight: DesignOperation | None = None

    # -- infrastructure --------------------------------------------------------

    def _script_key(self) -> str:
        return f"dm-script:{self.binding.da_id}"

    def _record(self, operation: str, subject: str = "",
                **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.DC,
                          f"DM:{self.binding.da_id}", operation, subject,
                          **detail)

    def _on_crash(self) -> None:
        self.log.crash()
        self._in_flight = None

    # -- work-flow execution ----------------------------------------------------

    def status(self) -> DmStatus:
        """Current progress snapshot."""
        return DmStatus(
            da_id=self.binding.da_id,
            done=self.cursor.is_done(),
            stopped=self.stopped,
            executed_dops=self.executed_dops,
            aborted_dops=self.aborted_dops,
            pending_actions=[a.token for a in self.cursor.enabled()],
        )

    def step(self, policy: DesignerPolicy | None = None) -> bool:
        """Execute one work-flow action; False when nothing ran.

        Returns False when the script is done, the DM is stopped
        (designer attention required), or no action is enabled.
        """
        outcome = self.start_step(policy)
        if isinstance(outcome, PendingDop):
            # sequential semantics: the tool runs to completion in-line,
            # advancing the shared clock by its duration
            return self.finish_step(outcome, policy, advance_clock=True)
        return outcome

    def start_step(self, policy: DesignerPolicy | None = None
                   ) -> "PendingDop | bool":
        """Begin one work-flow action (the concurrent-mode step).

        Instantaneous actions (decisions, embedded DA operations) run
        to completion and return True.  A DOP is only *started* —
        Begin-of-DOP, durable start log, checkouts — and its
        :class:`PendingDop` is returned; the caller owns scheduling
        :meth:`finish_step` once the tool's duration has elapsed.
        Returns False when nothing is enabled (done / stopped / a
        domain constraint rejected the start).
        """
        if self.stopped or self.cursor.is_done():
            return False
        policy = policy or DesignerPolicy()
        actions = self.cursor.enabled()
        if not actions:
            return False
        action = actions[0] if len(actions) == 1 \
            else policy.choose_enabled(actions)

        if action.kind is ActionKind.DOP:
            assert isinstance(action.node, DopStep)
            pending = self._start_dop(action, action.node, policy)
            return pending if pending is not None else False
        if action.kind is ActionKind.DA_OP:
            assert isinstance(action.node, DaOpStep)
            result = self.binding.da_operation(action.node.operation,
                                               dict(action.node.params))
            self._fire(action.token, None)
            self._record("da_operation", action.node.operation,
                         result=str(result)[:80])
            return True
        if action.kind is ActionKind.CHOICE:
            decision = policy.choose_alternative(action)
            self._fire(action.token, decision)
            self._record("choose_alternative", action.token, path=decision)
            return True
        if action.kind is ActionKind.LOOP:
            decision = policy.loop_decision(action)
            node = action.node
            if (decision == "again" and isinstance(node, Iteration)
                    and node.max_rounds
                    and action.options >= node.max_rounds):
                # the template allows no further round; the DM exits the
                # loop instead of failing the designer's request
                decision = "exit"
            self._fire(action.token, decision)
            self._record("loop_decision", action.token, decision=decision)
            return True
        if action.kind is ActionKind.OPEN:
            decision = policy.open_decision(action)
            if (isinstance(decision, tuple) and decision[0] == "insert"
                    and decision[1] not in self.tools):
                raise WorkflowError(
                    f"designer inserted unknown tool {decision[1]!r}")
            self._fire(action.token, decision)
            self._record("open_decision", action.token,
                         decision=str(decision))
            return True
        raise WorkflowError(f"unhandled action kind {action.kind}")

    def run(self, policy: DesignerPolicy | None = None,
            max_steps: int = 10_000) -> DmStatus:
        """Drive the script until done, stopped, or *max_steps*."""
        steps = 0
        while steps < max_steps and self.step(policy):
            steps += 1
        return self.status()

    def _fire(self, token: str, decision: Any) -> None:
        """Advance the cursor and durably log the script position."""
        self.cursor.fire(token, decision)
        self.log.append(LogRecordKind.SCRIPT_POSITION,
                        {"token": token, "decision": decision}, force=True)

    # -- DOP execution -----------------------------------------------------------

    def _start_dop(self, action: EnabledAction, step: DopStep,
                   policy: DesignerPolicy) -> PendingDop | None:
        """Begin-of-DOP + checkouts; returns None on constraint reject."""
        # domain admission: even Open-segment insertions obey the rules
        try:
            self.constraints.admit(self.executed_tools, step.tool)
        except ConstraintViolationError as exc:
            self.stopped = True
            self.stop_reason = str(exc)
            self._record("constraint_rejected", step.tool, error=str(exc))
            return None

        params = policy.dop_params(step)
        inputs = self.binding.pick_inputs(step)
        if self.restart_dov is not None:
            # after a spec modification the designer chose this basis
            inputs = [self.restart_dov]
            self.restart_dov = None

        dop = self.client_tm.begin_dop(self.binding.da_id, step.tool,
                                       params)
        self._in_flight = dop
        self.log.append(LogRecordKind.DOP_START, {
            "dop": dop.dop_id, "token": action.token, "tool": step.tool,
            "params": params, "inputs": inputs,
        }, force=True)
        self._record("dop_start", dop.dop_id, tool=step.tool)

        for dov_id in inputs:
            self.client_tm.checkout(dop, dov_id)
            self.log.append(LogRecordKind.DOV_USED,
                            {"dop": dop.dop_id, "dov": dov_id}, force=True)

        duration = step.duration or self.tools.duration(step.tool)
        return PendingDop(dop, action, step, params, duration, duration)

    def finish_step(self, pending: PendingDop,
                    policy: DesignerPolicy | None = None,
                    advance_clock: bool = False) -> bool:
        """Complete a started DOP: tool work, checkin, End-of-DOP.

        Under the concurrent kernel this runs as its own event at the
        DOP's finish instant (``advance_clock=False`` — the kernel
        already advanced the shared clock); the sequential :meth:`step`
        calls it in-line with ``advance_clock=True``.  Returns False
        when the DOP no longer exists on this DM — its workstation
        crashed between start and finish, and recovery owns it now.
        """
        policy = policy or DesignerPolicy()
        dop, step = pending.dop, pending.step
        if self._in_flight is not dop \
                or dop.dop_id not in {d.dop_id for d
                                      in self.client_tm.active_dops()}:
            return False
        if not pending.worked:
            self.client_tm.work(
                dop, pending.remaining,
                mutate=lambda ctx: self.tools.run(step.tool, ctx,
                                                  pending.params),
                advance_clock=advance_clock)
            pending.worked = True

        result = self.client_tm.checkin(dop, self.binding.dot_name)
        if result.success:
            self._finish_dop(dop, pending.action, step, result)
            return True
        return self._handle_checkin_failure(dop, pending.action, step,
                                            result, policy)

    def abandon_start(self) -> None:
        """Discard a DOP whose start could not complete.

        Used by the concurrent driver when the server goes down
        between Begin-of-DOP and the first checkout: the half-begun
        DOP is dropped locally and a closing log record is written so
        recovery never mistakes it for in-flight work; the retried
        step begins a fresh DOP.  No-op without an in-flight DOP.
        """
        dop = self._in_flight
        if dop is None:
            return
        self.client_tm.drop_dop(dop)
        self._in_flight = None
        self.log.append(LogRecordKind.DOP_FINISH, {
            "dop": dop.dop_id, "token": "", "tool": dop.tool,
            "outcome": "abandoned",
        }, force=True)
        self._record("dop_abandoned", dop.dop_id, tool=dop.tool)

    def resume_pending(self) -> PendingDop | None:
        """Rebuild the pending-completion descriptor after a recovery.

        :meth:`recover` resumes an in-flight DOP from its recovery
        point; under the concurrent kernel the driver then needs the
        start-time parameters back to reschedule the finish.  They are
        reconstructed from the durable DOP_START record (its script
        token is still enabled — the position only fires at finish).
        ``remaining`` is the tool duration minus the work that
        survived in the recovery point.
        """
        dop = self._in_flight
        if dop is None:
            return None
        finished = {r.payload["dop"] for r in
                    self.log.stable_records(LogRecordKind.DOP_FINISH)}
        starts = [r.payload for r in
                  self.log.stable_records(LogRecordKind.DOP_START)
                  if r.payload["dop"] not in finished]
        if not starts:
            return None
        payload = starts[-1]
        action = next((a for a in self.cursor.enabled()
                       if a.token == payload["token"]), None)
        if action is None or not isinstance(action.node, DopStep):
            return None
        step = action.node
        duration = step.duration or self.tools.duration(step.tool)
        remaining = max(0.0, duration - dop.context.work_done)
        return PendingDop(dop, action, step, dict(payload["params"]),
                          duration, remaining)

    def _finish_dop(self, dop: DesignOperation, action: EnabledAction,
                    step: DopStep, result: CheckinResult) -> None:
        self.client_tm.commit_dop(dop, result)
        self._in_flight = None
        self.executed_dops += 1
        self.executed_tools.append(step.tool)
        self._fire(action.token, None)
        self.log.append(LogRecordKind.DOP_FINISH, {
            "dop": dop.dop_id, "token": action.token, "tool": step.tool,
            "outcome": "commit",
            "output": dop.output_dov,
        }, force=True)
        self._record("dop_commit", dop.dop_id, tool=step.tool,
                     output=dop.output_dov)

    def _handle_checkin_failure(self, dop: DesignOperation,
                                action: EnabledAction, step: DopStep,
                                result: CheckinResult,
                                policy: DesignerPolicy) -> bool:
        """The paper's 'checkin failure': report to designer policy."""
        self.client_tm.abort_dop(dop, result.reason)
        self._in_flight = None
        self.aborted_dops += 1
        self.log.append(LogRecordKind.DOP_FINISH, {
            "dop": dop.dop_id, "token": action.token, "tool": step.tool,
            "outcome": "abort", "reason": result.reason,
        }, force=True)
        self._record("dop_abort", dop.dop_id, tool=step.tool,
                     reason=result.reason)
        reaction = policy.on_checkin_failure(step, result.reason)
        if reaction == "retry":
            return True  # position still enabled; next step() retries
        if reaction == "skip":
            self._fire(action.token, None)
            return True
        self.stopped = True
        self.stop_reason = f"checkin failure: {result.reason}"
        return False

    # -- external events (Sect.5.3 "Coping with External Events") -----------------

    def on_specification_modified(self,
                                  restart_dov: str | None = None) -> None:
        """Super-DA modified the spec: restart the script from scratch.

        "DA execution has to be restarted from the beginning.  However,
        the designer may choose any previously derived DOV as a
        starting point for the new activation."
        """
        self.cursor = self.script.cursor()
        self.executed_tools.clear()
        self.restart_dov = restart_dov
        self.stopped = False
        self.stop_reason = ""
        self.log.append(LogRecordKind.COOP_OPERATION, {
            "event": "spec_modified", "restart_dov": restart_dov,
        }, force=True)
        self._record("spec_modified_restart", restart_dov or "<none>")

    def on_withdrawal(self, dov_id: str) -> bool:
        """A pre-released DOV was withdrawn: was it used locally?

        "The DM of the requiring DA has to analyze (its log data),
        whether the pre-released DOV was used within a local DOP thus
        affecting locally derived DOVs.  If this is the case, the
        processing needs to be stopped and the designer has to decide
        on how to continue."  Returns True when processing stopped.
        """
        used = any(r.payload.get("dov") == dov_id
                   for r in self.log.stable_records(LogRecordKind.DOV_USED))
        self._record("withdrawal_analysis", dov_id, used=used)
        if used:
            self.stopped = True
            self.stop_reason = f"withdrawn DOV {dov_id} was used locally"
        return used

    def designer_continue(self) -> None:
        """The designer decided current work is unaffected; carry on.

        "there is no necessity for the designer to invalidate his own
        results, if he concludes ... that his current work is not
        negatively influenced by that withdrawal."
        """
        self.stopped = False
        self.stop_reason = ""
        self._record("designer_continue")

    # -- failure handling (workstation crash) ----------------------------------------

    def recover(self) -> dict[str, Any]:
        """Forward recovery after a workstation crash.

        Rebuilds the cursor by replaying the stable log's script
        positions over the persistent script, then resumes the
        in-flight DOP (if any) from its TE-level recovery point.
        Returns a report used by experiment F8.
        """
        script = self.node.stable.get(self._script_key())
        if script is None:
            raise RecoveryError(
                f"no persistent script for DA {self.binding.da_id!r}")
        self.script = script
        self.cursor = script.cursor()
        positions = self.log.stable_records(LogRecordKind.SCRIPT_POSITION)
        for record in positions:
            decision = record.payload["decision"]
            if isinstance(decision, list):  # tuples round-trip as lists
                decision = tuple(decision)
            self.cursor.fire(record.payload["token"], decision)

        # rebuild executed-tool history from finish records
        self.executed_tools = [
            r.payload["tool"]
            for r in self.log.stable_records(LogRecordKind.DOP_FINISH)
            if r.payload["outcome"] == "commit"]
        self.executed_dops = len(self.executed_tools)
        self.aborted_dops = sum(
            1 for r in self.log.stable_records(LogRecordKind.DOP_FINISH)
            if r.payload["outcome"] == "abort")

        # find an in-flight DOP: started but never finished
        finished = {r.payload["dop"] for r in
                    self.log.stable_records(LogRecordKind.DOP_FINISH)}
        in_flight = [r.payload for r in
                     self.log.stable_records(LogRecordKind.DOP_START)
                     if r.payload["dop"] not in finished]
        resumed = None
        if in_flight:
            payload = in_flight[-1]
            try:
                dop, point_time = self.client_tm.recover_dop(
                    payload["dop"], self.binding.da_id, payload["tool"])
                self._in_flight = dop
                resumed = {"dop": dop.dop_id, "tool": payload["tool"],
                           "recovered_work": dop.context.work_done,
                           "point_time": point_time}
            except RecoveryError:
                resumed = {"dop": payload["dop"], "tool": payload["tool"],
                           "recovered_work": 0.0, "point_time": None}
        report = {
            "script_positions_replayed": len(positions),
            "executed_dops": self.executed_dops,
            "in_flight_resumed": resumed,
        }
        self._record("dm_recovered", self.binding.da_id, **{
            k: str(v) for k, v in report.items()})
        return report

    @property
    def in_flight(self) -> DesignOperation | None:
        """The DOP currently executing on this DM (volatile)."""
        return self._in_flight
