"""Domain-wide DOP ordering constraints.

"There are dependencies between the DOPs to be observed within a given
design application domain ...  one may require that a DOP of a certain
type (e.g., chip assembly) must not be applied before a DOP of another
type has successfully completed (e.g., structure synthesis), or that a
certain DOP must always be followed by another DOP of a specific type
(e.g. pad frame editor followed by chip planner).  Since we define
these constraints to hold for all DAs of a design application domain,
any script within must not contradict these constraints" (Sect.4.2).

Two constraint forms follow directly from that paragraph:

* :class:`NotBefore` — ``tool`` must not run before ``prerequisite``
  has completed successfully;
* :class:`FollowedBy` — every ``tool`` execution must eventually be
  followed by ``successor``.

:class:`DomainConstraintSet` checks concrete executed sequences
(dynamic enforcement by the DM) and whole scripts (static validation by
sequence enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dc.script import Script
from repro.util.errors import ConstraintViolationError


class DomainConstraint:
    """Base class of DOP-ordering constraints."""

    def check_prefix(self, executed: list[str], next_tool: str) -> str | None:
        """May *next_tool* run after *executed*?  Violation message or None."""
        return None

    def check_complete(self, executed: list[str]) -> str | None:
        """Is the finished sequence *executed* legal?  Message or None."""
        return None


@dataclass(frozen=True)
class NotBefore(DomainConstraint):
    """*tool* must not be applied before *prerequisite* completed."""

    prerequisite: str
    tool: str

    def check_prefix(self, executed: list[str], next_tool: str) -> str | None:
        if next_tool == self.tool and self.prerequisite not in executed:
            return (f"{self.tool!r} must not run before "
                    f"{self.prerequisite!r} has completed")
        return None

    def check_complete(self, executed: list[str]) -> str | None:
        seen_prereq = False
        for tool in executed:
            if tool == self.tool and not seen_prereq:
                return (f"{self.tool!r} ran before {self.prerequisite!r}")
            if tool == self.prerequisite:
                seen_prereq = True
        return None


@dataclass(frozen=True)
class FollowedBy(DomainConstraint):
    """Every *tool* must eventually be followed by *successor*."""

    tool: str
    successor: str

    def check_complete(self, executed: list[str]) -> str | None:
        pending = False
        for tool in executed:
            if tool == self.tool:
                pending = True
            elif tool == self.successor:
                pending = False
        if pending:
            return (f"{self.tool!r} was not followed by "
                    f"{self.successor!r}")
        return None


class DomainConstraintSet:
    """All ordering constraints of one design application domain."""

    def __init__(self, constraints: list[DomainConstraint] | None = None,
                 domain: str = "generic") -> None:
        self.domain = domain
        self.constraints: list[DomainConstraint] = list(constraints or [])

    def add(self, constraint: DomainConstraint) -> "DomainConstraintSet":
        """Add a constraint; returns self for chaining."""
        self.constraints.append(constraint)
        return self

    # -- dynamic enforcement ---------------------------------------------------

    def admit(self, executed: list[str], next_tool: str) -> None:
        """Raise when *next_tool* may not run after *executed*.

        The DM calls this before starting every DOP, so even designer
        insertions in ``Open`` segments respect the domain rules.
        """
        for constraint in self.constraints:
            message = constraint.check_prefix(executed, next_tool)
            if message:
                raise ConstraintViolationError(
                    f"domain {self.domain!r}: {message}")

    def violations(self, executed: list[str],
                   history: list[str] | None = None) -> list[str]:
        """All violations of a finished sequence.

        *history* holds tools executed before the sequence started
        (e.g. by the super-DA on the initial DOV) — a sub-DA picking up
        mid-plane is not in violation of prerequisites already met.
        """
        full = list(history or []) + list(executed)
        problems = []
        for constraint in self.constraints:
            message = constraint.check_complete(full)
            if message:
                problems.append(message)
                continue
            # prefix rules must also hold step by step
            for i, tool in enumerate(full):
                prefix_msg = constraint.check_prefix(full[:i], tool)
                if prefix_msg:
                    problems.append(prefix_msg)
                    break
        return problems

    # -- static script validation --------------------------------------------------

    def validate_script(self, script: Script, max_iterations: int = 2,
                        history: list[str] | None = None) -> list[str]:
        """Check every enumerable sequence of *script*; returns problems.

        A script "must not contradict" the domain constraints: we flag
        any enumerated execution sequence that violates one.  ``Open``
        segments appear as the wildcard ``'*'`` in enumerated
        sequences: the designer may insert arbitrary tools there, so
        only violations occurring strictly *before* the first wildcard
        are provable statically — everything after is enforced
        dynamically via :meth:`admit`.
        """
        from repro.dc.script import Open

        problems: list[str] = []
        prior = list(history or [])
        for sequence in script.sequences(max_iterations):
            if Open.WILDCARD in sequence:
                prefix = sequence[:sequence.index(Open.WILDCARD)]
                messages = self._prefix_violations(prior + prefix)
            else:
                messages = self.violations(sequence, history=prior)
            for message in messages:
                note = f"sequence {sequence}: {message}"
                if note not in problems:
                    problems.append(note)
        return problems

    def _prefix_violations(self, prefix: list[str]) -> list[str]:
        """Step-wise prefix-rule violations only (wildcard handling)."""
        problems = []
        for constraint in self.constraints:
            for i, tool in enumerate(prefix):
                message = constraint.check_prefix(prefix[:i], tool)
                if message:
                    problems.append(message)
                    break
        return problems

    def require_valid(self, script: Script, max_iterations: int = 2,
                      history: list[str] | None = None) -> None:
        """Raise :class:`ConstraintViolationError` on any script problem."""
        problems = self.validate_script(script, max_iterations, history)
        if problems:
            raise ConstraintViolationError(
                f"script {script.name!r} contradicts domain "
                f"{self.domain!r} constraints: " + " | ".join(problems))

    def __len__(self) -> int:
        return len(self.constraints)
