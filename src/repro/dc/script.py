"""Scripts: work-flow templates for a DA's DOP executions (Fig.6).

"One can view a design methodology as a template for valid sequences of
DOP executions within a DA.  We call such a template a *script*.  A
script usually leaves some degrees of freedom to a designer ...
choosing one of several alternative paths, performing any intermediate
actions between two specified operations, perhaps containing
repetitions and branches for parallel actions" (Sect.4.2).

The AST nodes below cover everything Fig.6 shows:

* :class:`DopStep` — one design-tool execution;
* :class:`DaOpStep` — a specific DA operation (Evaluate, Propagate,
  Create_Sub_DA, ...) embedded in the work flow;
* :class:`Sequence` — ordered composition;
* :class:`Alternative` — designer chooses one of several paths
  (Fig.6b's branch after shape-function generation);
* :class:`Parallel` — branches that may interleave;
* :class:`Iteration` — designer-driven repetition ("the designer may
  perform re-iterations of parts of the internal tool executions");
* :class:`Open` — the "open" segments of Fig.6a: any intermediate
  actions, optionally restricted to a tool set.

:class:`ScriptCursor` interprets a script.  Its state is *derived* —
the DM reconstructs it after a crash by replaying its persistent log of
decisions and completions through a fresh cursor (forward recovery,
Sect.5.3) — so the cursor itself never needs serialising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from repro.util.errors import ScriptError


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class ScriptNode:
    """Base class of script AST nodes."""

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        """Enumerate the tool-name sequences this node can produce.

        Iterations are unrolled up to *max_iterations*; ``Open``
        segments contribute an empty placeholder (they are checked
        dynamically).  Used for static script-vs-constraint validation.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class DopStep(ScriptNode):
    """Execute a design tool as one DOP."""

    tool: str
    params: dict[str, Any] = field(default_factory=dict)
    #: simulated tool running time (minutes); 0 means "use the tool
    #: registry's default duration"
    duration: float = 0.0
    label: str = ""

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        return [[self.tool]]


@dataclass(frozen=True)
class DaOpStep(ScriptNode):
    """Execute a DA operation (AC-level primitive) inside the work flow.

    Examples from the paper: ``Evaluate`` of the quality state of DOVs,
    ``Create_Sub_DA``, ``Propose``, ``Require``, ``Propagate``.
    """

    operation: str
    params: dict[str, Any] = field(default_factory=dict)

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        return [[]]  # DA operations are invisible to DOP-order constraints


@dataclass(frozen=True)
class Sequence(ScriptNode):
    """Children execute strictly in order."""

    children: tuple[ScriptNode, ...]

    def __init__(self, *children: ScriptNode) -> None:
        if not children:
            raise ScriptError("Sequence needs at least one child")
        object.__setattr__(self, "children", tuple(children))

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        results: list[list[str]] = [[]]
        for child in self.children:
            expanded: list[list[str]] = []
            for prefix in results:
                for suffix in child.sequences(max_iterations):
                    expanded.append(prefix + suffix)
            results = expanded
        return results


@dataclass(frozen=True)
class Alternative(ScriptNode):
    """The designer picks exactly one of several paths."""

    paths: tuple[ScriptNode, ...]
    name: str = ""

    def __init__(self, *paths: ScriptNode, name: str = "") -> None:
        if len(paths) < 2:
            raise ScriptError("Alternative needs at least two paths")
        object.__setattr__(self, "paths", tuple(paths))
        object.__setattr__(self, "name", name)

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        results: list[list[str]] = []
        for path in self.paths:
            results.extend(path.sequences(max_iterations))
        return results


@dataclass(frozen=True)
class Parallel(ScriptNode):
    """Branches whose steps may interleave arbitrarily."""

    branches: tuple[ScriptNode, ...]

    def __init__(self, *branches: ScriptNode) -> None:
        if len(branches) < 2:
            raise ScriptError("Parallel needs at least two branches")
        object.__setattr__(self, "branches", tuple(branches))

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        per_branch = [b.sequences(max_iterations) for b in self.branches]
        results: list[list[str]] = []

        def interleave(seqs: list[list[str]], acc: list[str]) -> None:
            if all(not s for s in seqs):
                results.append(list(acc))
                return
            for i, seq in enumerate(seqs):
                if seq:
                    head, rest = seq[0], seq[1:]
                    nxt = seqs[:i] + [rest] + seqs[i + 1:]
                    acc.append(head)
                    interleave(nxt, acc)
                    acc.pop()

        # one combination of concrete branch sequences at a time
        def combos(idx: int, chosen: list[list[str]]) -> None:
            if idx == len(per_branch):
                interleave([list(s) for s in chosen], [])
                return
            for seq in per_branch[idx]:
                combos(idx + 1, chosen + [seq])

        combos(0, [])
        # deduplicate while keeping order
        seen: set[tuple[str, ...]] = set()
        unique = []
        for seq in results:
            key = tuple(seq)
            if key not in seen:
                seen.add(key)
                unique.append(seq)
        return unique


@dataclass(frozen=True)
class Iteration(ScriptNode):
    """Repeat *body*; after each round the designer decides to go again.

    ``max_rounds`` bounds runaway loops (0 = designer-only control,
    still bounded by the enumeration's *max_iterations* statically).
    """

    body: ScriptNode
    max_rounds: int = 0
    name: str = ""

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        body_seqs = self.sequences_of_body(max_iterations)
        bound = max_iterations if self.max_rounds == 0 \
            else min(self.max_rounds, max_iterations)
        results: list[list[str]] = []
        current: list[list[str]] = [[]]
        for _round in range(max(1, bound)):
            expanded = []
            for prefix in current:
                for body_seq in body_seqs:
                    expanded.append(prefix + body_seq)
            current = expanded
            results.extend(current)
        return results

    def sequences_of_body(self, max_iterations: int) -> list[list[str]]:
        """Sequences of one body round."""
        return self.body.sequences(max_iterations)


@dataclass(frozen=True)
class Open(ScriptNode):
    """An undetermined segment: the designer inserts arbitrary steps.

    ``allowed_tools`` (when given) restricts what may be inserted —
    scripts "allow the specification of partially or even completely
    undetermined templates" (Sect.4.2).
    """

    allowed_tools: tuple[str, ...] | None = None
    name: str = ""

    #: sentinel used in static sequence enumeration: "any tools may be
    #: inserted here" (the constraint checker treats everything after a
    #: wildcard as unprovable and enforces it dynamically instead)
    WILDCARD = "*"

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        return [[Open.WILDCARD]]

    def permits(self, tool: str) -> bool:
        """True when the designer may insert *tool* here."""
        return self.allowed_tools is None or tool in self.allowed_tools


def completely_open_script() -> "Script":
    """A script imposing no structure at all (Fig.6a's degenerate case)."""
    return Script(Open(name="completely-open"))


# ---------------------------------------------------------------------------
# Cursor
# ---------------------------------------------------------------------------

class ActionKind(str, Enum):
    """What the DM / designer must do next at an enabled position."""

    DOP = "dop"              # execute the DOP step at this position
    DA_OP = "da_op"          # execute the embedded DA operation
    CHOICE = "choice"        # pick an Alternative path (decision: int)
    LOOP = "loop"            # decide Iteration: 'again' | 'exit'
    OPEN = "open"            # insert a tool ('insert:<tool>') or 'close'


@dataclass(frozen=True)
class EnabledAction:
    """One currently enabled position in the script."""

    token: str          # stable position path, e.g. '0.s1.p0.s2'
    kind: ActionKind
    node: ScriptNode
    #: for CHOICE: number of paths; for LOOP: completed rounds
    options: int = 0

    @property
    def tool(self) -> str | None:
        """Tool name for DOP actions (None otherwise)."""
        return self.node.tool if isinstance(self.node, DopStep) else None


class Script:
    """A validated script with a root node."""

    def __init__(self, root: ScriptNode, name: str = "script") -> None:
        self.root = root
        self.name = name

    def sequences(self, max_iterations: int = 2) -> list[list[str]]:
        """All statically enumerable tool sequences."""
        return self.root.sequences(max_iterations)

    def cursor(self) -> "ScriptCursor":
        """A fresh interpreter over this script."""
        return ScriptCursor(self)


class ScriptCursor:
    """Stateful interpreter producing enabled actions and consuming firings.

    State is a flat dict keyed by position token, so replaying the same
    firing sequence always reproduces the same cursor state — the
    property the DM's forward recovery relies on.
    """

    def __init__(self, script: Script) -> None:
        self.script = script
        #: token -> node-kind-specific state
        self._state: dict[str, Any] = {}
        #: ordered firing history (token, decision) — what the DM logs
        self.history: list[tuple[str, Any]] = []

    # -- public API ---------------------------------------------------------

    def enabled(self) -> list[EnabledAction]:
        """All positions that may fire right now."""
        if self.is_done():
            return []
        return self._enabled(self.script.root, "0")

    def is_done(self) -> bool:
        """True when the whole script has completed."""
        return self._done(self.script.root, "0")

    def fire(self, token: str, decision: Any = None) -> None:
        """Consume one enabled action.

        * DOP / DA_OP: marks the step complete (the DM fires only after
          a successful DOP commit);
        * CHOICE: ``decision`` is the chosen path index;
        * LOOP: ``decision`` is ``'again'`` or ``'exit'``;
        * OPEN: ``decision`` is ``('insert', tool)`` or ``'close'``.
        """
        enabled = {a.token: a for a in self.enabled()}
        if token not in enabled:
            raise ScriptError(f"position {token!r} is not enabled "
                              f"(enabled: {sorted(enabled)})")
        action = enabled[token]
        self._apply(action, decision)
        self.history.append((token, decision))

    def replay(self, history: list[tuple[str, Any]]) -> None:
        """Re-apply a logged firing sequence (DM crash recovery)."""
        for token, decision in history:
            self.fire(token, decision)

    def reset_subtree(self, token: str) -> int:
        """Clear completion state under *token* (designer re-iteration).

        "the designer is allowed to step in ... and cause the iteration
        of a sequence of executed DOPs" (Sect.5.3).  Returns the number
        of state entries cleared.
        """
        doomed = [k for k in self._state
                  if k == token or k.startswith(token + ".")]
        for key in doomed:
            del self._state[key]
        return len(doomed)

    # -- interpretation -------------------------------------------------------

    def _apply(self, action: EnabledAction, decision: Any) -> None:
        node, token = action.node, action.token
        if action.kind in (ActionKind.DOP, ActionKind.DA_OP):
            self._state[token] = "done"
        elif action.kind is ActionKind.CHOICE:
            assert isinstance(node, Alternative)
            if not isinstance(decision, int) \
                    or not 0 <= decision < len(node.paths):
                raise ScriptError(
                    f"alternative {token!r} needs a path index in "
                    f"[0, {len(node.paths)}), got {decision!r}")
            self._state[token] = decision
        elif action.kind is ActionKind.LOOP:
            if decision not in ("again", "exit"):
                raise ScriptError(
                    f"iteration {token!r} needs 'again' or 'exit', "
                    f"got {decision!r}")
            state = self._state.setdefault(token,
                                           {"round": 0, "exited": False})
            if decision == "exit":
                state["exited"] = True
            else:
                assert isinstance(node, Iteration)
                if node.max_rounds and state["round"] + 1 >= node.max_rounds:
                    raise ScriptError(
                        f"iteration {token!r} reached max_rounds="
                        f"{node.max_rounds}")
                state["round"] += 1
        elif action.kind is ActionKind.OPEN:
            assert isinstance(node, Open)
            state = self._state.setdefault(token,
                                           {"inserted": [], "closed": False})
            if decision == "close":
                state["closed"] = True
            elif (isinstance(decision, tuple) and len(decision) == 2
                  and decision[0] == "insert"):
                tool = decision[1]
                if not node.permits(tool):
                    raise ScriptError(
                        f"open segment {token!r} does not permit tool "
                        f"{tool!r}")
                state["inserted"].append(tool)
            else:
                raise ScriptError(
                    f"open segment {token!r} needs ('insert', tool) or "
                    f"'close', got {decision!r}")

    # enabled/done recursion ---------------------------------------------------

    def _enabled(self, node: ScriptNode, token: str) -> list[EnabledAction]:
        if isinstance(node, DopStep):
            if self._state.get(token) != "done":
                return [EnabledAction(token, ActionKind.DOP, node)]
            return []
        if isinstance(node, DaOpStep):
            if self._state.get(token) != "done":
                return [EnabledAction(token, ActionKind.DA_OP, node)]
            return []
        if isinstance(node, Sequence):
            for i, child in enumerate(node.children):
                child_token = f"{token}.s{i}"
                if not self._done(child, child_token):
                    return self._enabled(child, child_token)
            return []
        if isinstance(node, Alternative):
            choice = self._state.get(token)
            if choice is None:
                return [EnabledAction(token, ActionKind.CHOICE, node,
                                      options=len(node.paths))]
            return self._enabled(node.paths[choice], f"{token}.p{choice}")
        if isinstance(node, Parallel):
            actions: list[EnabledAction] = []
            for i, branch in enumerate(node.branches):
                branch_token = f"{token}.b{i}"
                if not self._done(branch, branch_token):
                    actions.extend(self._enabled(branch, branch_token))
            return actions
        if isinstance(node, Iteration):
            state = self._state.get(token, {"round": 0, "exited": False})
            body_token = f"{token}.r{state['round']}"
            if not self._done(node.body, body_token):
                return self._enabled(node.body, body_token)
            if not state["exited"]:
                return [EnabledAction(token, ActionKind.LOOP, node,
                                      options=state["round"] + 1)]
            return []
        if isinstance(node, Open):
            state = self._state.get(token, {"inserted": [], "closed": False})
            if state["closed"]:
                return []
            actions = [EnabledAction(token, ActionKind.OPEN, node,
                                     options=len(state["inserted"]))]
            # a pending inserted step must run before new insertions fire
            pending = self._pending_inserted(token, state)
            if pending is not None:
                index, tool = pending
                step = DopStep(tool)
                return [EnabledAction(f"{token}.i{index}", ActionKind.DOP,
                                      step)]
            return actions
        raise ScriptError(f"unknown script node {type(node).__name__}")

    def _pending_inserted(self, token: str,
                          state: dict[str, Any]) -> tuple[int, str] | None:
        for index, tool in enumerate(state["inserted"]):
            if self._state.get(f"{token}.i{index}") != "done":
                return index, tool
        return None

    def _done(self, node: ScriptNode, token: str) -> bool:
        if isinstance(node, (DopStep, DaOpStep)):
            return self._state.get(token) == "done"
        if isinstance(node, Sequence):
            return all(self._done(child, f"{token}.s{i}")
                       for i, child in enumerate(node.children))
        if isinstance(node, Alternative):
            choice = self._state.get(token)
            if choice is None:
                return False
            return self._done(node.paths[choice], f"{token}.p{choice}")
        if isinstance(node, Parallel):
            return all(self._done(branch, f"{token}.b{i}")
                       for i, branch in enumerate(node.branches))
        if isinstance(node, Iteration):
            state = self._state.get(token)
            if state is None:
                return False
            return (state["exited"]
                    and self._done(node.body, f"{token}.r{state['round']}"))
        if isinstance(node, Open):
            state = self._state.get(token)
            if state is None or not state["closed"]:
                return False
            return self._pending_inserted(token, state) is None
        raise ScriptError(f"unknown script node {type(node).__name__}")

    # -- introspection ------------------------------------------------------------

    def executed_tools(self) -> Iterator[str]:
        """Tool names of DOP steps completed so far, in firing order."""
        for token, _decision in self.history:
            action_node = self._node_at(token)
            if isinstance(action_node, DopStep):
                yield action_node.tool

    def _node_at(self, token: str) -> ScriptNode | None:
        node: ScriptNode | None = self.script.root
        parts = token.split(".")[1:]
        for part in parts:
            if node is None:
                return None
            if part.startswith("s") and isinstance(node, Sequence):
                node = node.children[int(part[1:])]
            elif part.startswith("p") and isinstance(node, Alternative):
                node = node.paths[int(part[1:])]
            elif part.startswith("b") and isinstance(node, Parallel):
                node = node.branches[int(part[1:])]
            elif part.startswith("r") and isinstance(node, Iteration):
                node = node.body
            elif part.startswith("i") and isinstance(node, Open):
                # inserted tools: reconstruct from the open segment's state
                open_token = token.rsplit(".", 1)[0]
                open_state = self._state.get(open_token, {"inserted": []})
                index = int(part[1:])
                inserted = open_state["inserted"]
                node = DopStep(inserted[index]) if index < len(inserted) \
                    else None
            else:
                return None
        return node
