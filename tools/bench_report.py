#!/usr/bin/env python3
"""Pretty-print a ``BENCH_PERF.json`` perf report, with deltas.

One argument prints the report; two arguments print NEW against OLD
with a per-benchmark throughput delta — the before/after view of the
perf trajectory::

    python tools/bench_report.py BENCH_PERF.json            # single run
    python tools/bench_report.py NEW.json OLD.json          # delta view

Informative only: the exit code is 0 unless a file is missing or
malformed.  The CI perf job gates on the artifact's ``acceptance.ok``
in a separate step — this tool just renders the numbers (see
``docs/performance.md``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any


def load(path: str) -> dict[str, Any]:
    """Load and minimally validate one perf report."""
    report = json.loads(Path(path).read_text(encoding="utf-8"))
    if "benchmarks" not in report:
        raise ValueError(f"{path}: not a perf report (no 'benchmarks')")
    return report


def _fmt_ops(value: Any) -> str:
    return f"{value:,.0f}" if isinstance(value, (int, float)) else "-"


def render_delta(new: dict[str, Any],
                 old: dict[str, Any] | None = None) -> str:
    """Fixed-width table of one report, or of NEW vs OLD."""
    header = ["benchmark", "ops/sec", "speedup"]
    if old is not None:
        header += ["old ops/sec", "delta"]
    rows: list[list[str]] = []
    old_benches = (old or {}).get("benchmarks", {})
    for name, bench in new["benchmarks"].items():
        speedup = bench.get("speedup_vs_baseline",
                            bench.get("speedup_vs_deepcopy_baseline"))
        row = [name, _fmt_ops(bench.get("ops_per_sec")),
               f"{speedup:.2f}x" if speedup else "-"]
        if old is not None:
            before = old_benches.get(name, {}).get("ops_per_sec")
            row.append(_fmt_ops(before))
            if isinstance(before, (int, float)) and before:
                change = (bench["ops_per_sec"] - before) / before * 100.0
                row.append(f"{change:+.1f}%")
            else:
                row.append("new")
        rows.append(row)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    acceptance = new.get("acceptance", {})
    if acceptance:
        gates = [f"buffer-hit speedup "
                 f"{acceptance.get('buffer_hit_speedup')}x "
                 f">= {acceptance.get('buffer_hit_min_speedup')}x"]
        if "group_flush_min_speedup" in acceptance:
            gates.append(
                f"group-flush speedup "
                f"{acceptance.get('group_flush_speedup')}x "
                f">= {acceptance.get('group_flush_min_speedup')}x")
        if acceptance.get("perf_gates_applied"):
            gates.append(
                f"kernel-events "
                f"{acceptance.get('kernel_events_ops_per_sec'):,.0f}/s "
                f">= {acceptance.get('kernel_events_min_ops_per_sec'):,}/s")
            gates.append(
                f"timer-churn speedup "
                f"{acceptance.get('timer_churn_speedup')}x "
                f">= {acceptance.get('timer_churn_min_speedup')}x")
            gates.append(
                f"scorecard speedup "
                f"{acceptance.get('scorecard_speedup')}x "
                f">= {acceptance.get('scorecard_min_speedup')}x")
            if "shard_scaling_min_speedup" in acceptance:
                gates.append(
                    f"shard-scaling capacity "
                    f"{acceptance.get('shard_scaling_speedup')}x "
                    f">= {acceptance.get('shard_scaling_min_speedup')}x")
            if "federation_flatness" in acceptance:
                gates.append(
                    f"federation-flatness "
                    f"{acceptance.get('federation_flatness')}x "
                    f"<= {acceptance.get('federation_flatness_max')}x")
        if "federation_log_bounded" in acceptance:
            gates.append(
                "federation-log "
                + ("bounded" if acceptance["federation_log_bounded"]
                   else "UNBOUNDED"))
        if "determinism_ok" in acceptance:
            gates.append("determinism "
                         + ("ok" if acceptance["determinism_ok"]
                            else "MISMATCH"))
        lines.append("acceptance: " + ", ".join(gates) + " -> "
                     + ("OK" if acceptance.get("ok") else "FAIL"))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or len(args) > 2:
        print(__doc__)
        return 2
    try:
        new = load(args[0])
        old = load(args[1]) if len(args) == 2 else None
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}")
        return 1
    print(render_delta(new, old))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
