#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Scans ``README.md``, ``ROADMAP.md``, ``docs/*.md`` and
``examples/README.md`` for markdown links/images and verifies that
every **relative** target resolves to an existing file or directory
(anchors are stripped; external ``http(s):``/``mailto:`` targets and
bare in-page ``#anchors`` are skipped).  Exits non-zero listing every
broken link — cheap enough to keep blocking in CI.

Usage::

    python tools/check_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links/images: [text](target) / ![alt](target)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: targets that are not this repo's business
_EXTERNAL = re.compile(r"^(https?:|mailto:|ftp:)", re.IGNORECASE)


def doc_files(root: Path) -> list[Path]:
    """The markdown files whose links this repo guarantees."""
    files = [root / "README.md", root / "ROADMAP.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    files.extend(sorted((root / "examples").glob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(path: Path, root: Path) -> list[str]:
    """Broken-link descriptions for one markdown file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: broken link "
                    f"-> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]).resolve() if args \
        else Path(__file__).resolve().parent.parent
    files = doc_files(root)
    if not files:
        print(f"no markdown docs found under {root}")
        return 2
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, root))
    checked = ", ".join(str(f.relative_to(root)) for f in files)
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} broken link(s) across: {checked}")
        return 1
    print(f"all relative links resolve ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
