"""The trace record/replay oracle against the committed goldens.

The regression contract of this PR: the golden traces under
``tests/data/traces/`` pin the exact kernel event stream of the T7 and
T8 scenarios, and replaying them must be **byte-identical** under the
current fast-path build, under the full compat build (every fast path
off), and at ``shards=1`` explicitly — any future kernel, scheduler or
protocol change that silently reorders the simulation fails here with
a first-divergence report instead of passing unnoticed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenario import canonical_scenarios
from repro.sim.kernel import Kernel
from repro.sim.trace import (
    TRACE_FORMAT,
    BuildFlags,
    KernelTrace,
    TraceError,
    capture_trace,
    diff_traces,
    load_trace,
    record_scenario,
    replay_trace,
    save_trace,
)

TRACES = Path(__file__).parent / "data" / "traces"
GOLDENS = ("t7_concurrent_team", "t8_object_buffers")


@pytest.fixture(scope="module", params=GOLDENS)
def golden(request):
    return request.param, load_trace(TRACES / f"{request.param}.jsonl")


class TestGoldenReplay:
    def test_golden_traces_are_committed(self):
        for name in GOLDENS:
            assert (TRACES / f"{name}.jsonl").is_file()

    def test_replay_under_default_build(self, golden):
        name, trace = golden
        diff = replay_trace(trace)
        assert diff.identical, f"{name}:\n{diff.render()}"

    def test_replay_under_compat_build(self, golden):
        """The seed-equivalent build (kernel_fast_path(False) et al.)
        replays the identical stream."""
        name, trace = golden
        diff = replay_trace(trace, flags=BuildFlags.compat())
        assert diff.identical, f"{name}:\n{diff.render()}"

    def test_replay_under_kernel_fast_path_off_alone(self, golden):
        name, trace = golden
        flags = BuildFlags(kernel_fast_path=False)
        diff = replay_trace(trace, flags=flags)
        assert diff.identical, f"{name}:\n{diff.render()}"

    def test_replay_at_one_shard(self, golden):
        name, trace = golden
        diff = replay_trace(trace, shards=1)
        assert diff.identical, f"{name}:\n{diff.render()}"

    def test_rerecord_is_byte_identical(self, golden, tmp_path):
        """The artifact itself is deterministic: re-recording the
        embedded scenario reproduces the committed bytes exactly."""
        name, trace = golden
        from repro.scenario.schema import validate_scenario

        config = validate_scenario(trace.scenario)
        fresh = record_scenario(
            config, flags=BuildFlags.from_dict(trace.meta["flags"]),
            shards=trace.meta["shards"])
        out = save_trace(fresh, tmp_path / "fresh.jsonl")
        committed = (TRACES / f"{name}.jsonl").read_bytes()
        assert out.read_bytes() == committed

    def test_golden_headers_are_self_contained(self, golden):
        name, trace = golden
        assert trace.meta["format"] == TRACE_FORMAT
        assert trace.meta["events"] == len(trace.events)
        assert trace.scenario["scenario"]["kind"]
        assert trace.scenario["scenario"]["seed"] >= 0


class TestDivergenceReporting:
    def test_doctored_event_reports_first_divergence(self, golden):
        name, trace = golden
        doctored = KernelTrace(
            meta=dict(trace.meta),
            events=list(trace.events))
        index = len(doctored.events) // 2
        time, priority, seq, label = doctored.events[index]
        doctored.events[index] = (time, priority, seq, "doctored")
        diff = diff_traces(doctored, trace)
        assert not diff.identical
        assert diff.first_divergence == index
        assert diff.expected[3] == "doctored"
        assert diff.actual[3] == label
        report = diff.render()
        assert f"#{index}" in report
        assert "doctored" in report

    def test_truncated_stream_reports_length_divergence(self, golden):
        __, trace = golden
        short = KernelTrace(meta=dict(trace.meta),
                            events=list(trace.events[:-2]))
        diff = diff_traces(trace, short)
        assert not diff.identical
        assert diff.first_divergence == len(trace.events) - 2
        assert diff.actual is None
        assert "(stream ended)" in diff.render()

    def test_identical_render_names_the_count(self, golden):
        __, trace = golden
        diff = diff_traces(trace, trace)
        assert diff.identical
        assert str(len(trace.events)) in diff.render()


class TestArtifactValidation:
    def test_load_rejects_wrong_format(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format":"concord-kernel-trace/99"}\n')
        with pytest.raises(TraceError, match="format"):
            load_trace(bad)

    def test_load_rejects_missing_header(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('[1.0,0,0,"x"]\n')
        with pytest.raises(TraceError, match="header"):
            load_trace(bad)

    def test_load_rejects_event_count_mismatch(self, tmp_path, golden):
        __, trace = golden
        lines = (TRACES / f"{golden[0]}.jsonl").read_text().splitlines()
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines[:-1]) + "\n")  # drop one event
        with pytest.raises(TraceError, match="declares"):
            load_trace(bad)

    def test_load_names_the_bad_line(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format":"%s","events":1}\n[1.0,0]\n'
                       % TRACE_FORMAT)
        with pytest.raises(TraceError, match=":2:"):
            load_trace(bad)

    def test_capture_refuses_untraced_kernel(self):
        kernel = Kernel(trace_events=False)
        kernel.at(1.0, lambda: None)
        kernel.run_until_quiescent()
        with pytest.raises(TraceError, match="trace_events=False"):
            capture_trace(kernel)

    def test_replay_refuses_scenario_free_trace(self):
        trace = KernelTrace(meta={"format": TRACE_FORMAT}, events=[])
        with pytest.raises(TraceError, match="embedded scenario"):
            replay_trace(trace)


class TestGzipArtifacts:
    """``.jsonl.gz`` traces: same contract, smaller bytes."""

    def test_round_trip_preserves_meta_and_events(self, golden,
                                                  tmp_path):
        __, trace = golden
        out = save_trace(trace, tmp_path / "trace.jsonl.gz")
        assert out.read_bytes()[:2] == b"\x1f\x8b"
        loaded = load_trace(out)
        assert loaded.meta == trace.meta
        assert loaded.events == trace.events

    def test_compressed_bytes_are_deterministic(self, golden, tmp_path):
        """mtime is zeroed, so two saves of the same trace are
        byte-identical — gzipped goldens stay committable."""
        __, trace = golden
        first = save_trace(trace, tmp_path / "a.jsonl.gz").read_bytes()
        second = save_trace(trace, tmp_path / "b.jsonl.gz").read_bytes()
        assert first == second

    def test_payload_matches_the_plain_artifact(self, golden, tmp_path):
        import gzip

        __, trace = golden
        plain = save_trace(trace, tmp_path / "t.jsonl").read_bytes()
        packed = save_trace(trace,
                            tmp_path / "t.jsonl.gz").read_bytes()
        assert gzip.decompress(packed) == plain
        assert len(packed) < len(plain)

    def test_detection_is_by_magic_bytes_not_extension(self, golden,
                                                       tmp_path):
        __, trace = golden
        packed = save_trace(trace, tmp_path / "t.jsonl.gz")
        renamed = tmp_path / "renamed.jsonl"
        renamed.write_bytes(packed.read_bytes())
        assert load_trace(renamed).events == trace.events

    def test_corrupt_gzip_is_a_trace_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl.gz"
        bad.write_bytes(b"\x1f\x8b" + b"\x00" * 16)
        with pytest.raises(TraceError, match="gzip"):
            load_trace(bad)


class TestFlagPlumbing:
    def test_compat_is_all_off(self):
        flags = BuildFlags.compat()
        assert not flags.kernel_fast_path
        assert not flags.payload_fast_path
        assert not flags.lease_fast_path

    def test_round_trip_through_dict(self):
        flags = BuildFlags(kernel_fast_path=False)
        assert BuildFlags.from_dict(flags.as_dict()) == flags

    def test_apply_flips_and_restores_the_switches(self):
        from repro.repository import versions
        from repro.sim import scheduler
        from repro.txn import leases

        before = (scheduler._FAST_PATH, versions._FAST_PATH,
                  leases._FAST_PATH)
        with BuildFlags.compat().apply():
            assert not scheduler._FAST_PATH
            assert not versions._FAST_PATH
            assert not leases._FAST_PATH
        assert (scheduler._FAST_PATH, versions._FAST_PATH,
                leases._FAST_PATH) == before


class TestT9Coverage:
    """T9 is not pinned as a golden (the restart episode makes its
    stream longer) but must replay just as exactly."""

    def test_t9_records_and_replays(self):
        config = canonical_scenarios()["t9_write_back"]
        trace = record_scenario(config)
        assert trace.events
        diff = replay_trace(trace, flags=BuildFlags.compat())
        assert diff.identical, diff.render()
