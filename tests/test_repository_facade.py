"""Unit tests for the DesignDataRepository facade."""

from __future__ import annotations

import pytest

from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.util.errors import (
    IntegrityError,
    SchemaError,
    UnknownObjectError,
)
from repro.util.ids import IdGenerator


class TestSchemaRegistry:
    def test_register_and_lookup(self, repository, cell_dot):
        assert repository.dot("Cell") is cell_dot

    def test_reregister_same_object_ok(self, repository, cell_dot):
        repository.register_dot(cell_dot)

    def test_conflicting_name_rejected(self, repository):
        with pytest.raises(SchemaError):
            repository.register_dot(DesignObjectType("Cell"))

    def test_unknown_dot(self, repository):
        with pytest.raises(UnknownObjectError):
            repository.dot("Nope")


class TestGraphs:
    def test_create_and_lookup(self, repository):
        graph = repository.create_graph("da-2")
        assert repository.graph("da-2") is graph
        assert repository.has_graph("da-2")

    def test_duplicate_graph_rejected(self, repository):
        with pytest.raises(UnknownObjectError):
            repository.create_graph("da-1")

    def test_unknown_graph(self, repository):
        with pytest.raises(UnknownObjectError):
            repository.graph("da-99")


class TestCheckin:
    def test_checkin_extends_graph(self, repository):
        dov = repository.checkin("da-1", "Cell", {"area": 1.0})
        assert dov.dov_id in repository.graph("da-1")
        assert repository.read(dov.dov_id).data == {"area": 1.0}

    def test_checkin_with_parents(self, repository):
        parent = repository.checkin("da-1", "Cell", {"area": 1.0})
        child = repository.checkin("da-1", "Cell", {"area": 2.0},
                                   parents=(parent.dov_id,))
        assert repository.graph("da-1").is_ancestor(parent.dov_id,
                                                    child.dov_id)

    def test_integrity_violation_rejected(self, repository):
        with pytest.raises(IntegrityError):
            repository.checkin("da-1", "Cell", {"area": -1.0})

    def test_unknown_attribute_rejected(self, repository):
        with pytest.raises(IntegrityError):
            repository.checkin("da-1", "Cell", {"bogus": 1})

    def test_unknown_parent_rejected(self, repository):
        with pytest.raises(UnknownObjectError):
            repository.checkin("da-1", "Cell", {"area": 1.0},
                               parents=("dov-404",))

    def test_two_phase_abort_leaves_nothing(self, repository):
        staged = repository.stage_checkin("da-1", "Cell", {"area": 1.0},
                                          (), 0.0)
        assert repository.abort_checkin(staged.dov_id) is True
        assert staged.dov_id not in repository
        assert staged.dov_id not in repository.graph("da-1")

    def test_two_phase_commit(self, repository):
        staged = repository.stage_checkin("da-1", "Cell", {"area": 1.0},
                                          (), 5.0)
        committed = repository.commit_checkin(staged.dov_id)
        assert committed.created_at == 5.0
        assert committed.dov_id in repository.graph("da-1")

    def test_commit_without_stage_raises(self, repository):
        with pytest.raises(UnknownObjectError):
            repository.commit_checkin("dov-404")

    def test_staged_invisible_to_read(self, repository):
        staged = repository.stage_checkin("da-1", "Cell", {"area": 1.0},
                                          (), 0.0)
        with pytest.raises(UnknownObjectError):
            repository.read(staged.dov_id)


class TestCrashRecovery:
    def test_recover_rebuilds_graphs(self, repository):
        first = repository.checkin("da-1", "Cell", {"area": 1.0})
        second = repository.checkin("da-1", "Cell", {"area": 2.0},
                                    parents=(first.dov_id,))
        repository.crash()
        report = repository.recover()
        assert report["versions"] == 2
        assert report["graphs"] == 1
        graph = repository.graph("da-1")
        assert graph.is_ancestor(first.dov_id, second.dov_id)

    def test_staged_checkin_lost_in_crash(self, repository):
        repository.stage_checkin("da-1", "Cell", {"area": 1.0}, (), 0.0)
        report = repository.crash()
        assert report["pending_lost"] == 1
        repository.recover()
        assert len(repository.store) == 0

    def test_stats(self, repository):
        repository.checkin("da-1", "Cell", {"area": 1.0})
        stats = repository.stats()
        assert stats["dots"] == 1
        assert stats["graphs"] == 1
        assert stats["durable_versions"] == 1

    def test_ids_are_sequential(self):
        repo = DesignDataRepository(IdGenerator())
        repo.register_dot(DesignObjectType("X", attributes=[
            AttributeDef("v", AttributeKind.INT, required=False)]))
        repo.create_graph("da-1")
        first = repo.checkin("da-1", "X", {"v": 1})
        second = repo.checkin("da-1", "X", {"v": 2})
        assert first.dov_id == "dov-1"
        assert second.dov_id == "dov-2"
