"""Tests for the federated repository (the paper's future work)."""

from __future__ import annotations

import pytest

from repro.repository.federation import FederatedRepository
from repro.repository.placement import (
    PlacementIndex,
    federation_fast_path,
)
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.util.errors import StorageError, UnknownObjectError
from repro.util.ids import IdGenerator


def make_dot():
    return DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)])


@pytest.fixture
def federation():
    ids = IdGenerator()
    members = {
        "site-a": DesignDataRepository(ids),
        "site-b": DesignDataRepository(ids),
    }
    fed = FederatedRepository(members)
    fed.register_dot(make_dot())
    return fed


class TestPlacement:
    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            FederatedRepository({})

    def test_round_robin_placement(self, federation):
        federation.create_graph("da-1")
        federation.create_graph("da-2")
        assert federation.placement_of("da-1") == "site-a"
        assert federation.placement_of("da-2") == "site-b"

    def test_explicit_assignment(self, federation):
        federation.assign("da-9", "site-b")
        federation.create_graph("da-9")
        assert federation.placement_of("da-9") == "site-b"
        assert federation.member("site-b").has_graph("da-9")
        assert not federation.member("site-a").has_graph("da-9")

    def test_unplaced_da(self, federation):
        with pytest.raises(UnknownObjectError):
            federation.placement_of("da-404")
        assert not federation.has_graph("da-404")


class TestSchemaBroadcast:
    def test_dot_known_everywhere(self, federation):
        for member in federation.members().values():
            assert member.dot("Cell").name == "Cell"
        assert federation.dot("Cell").name == "Cell"


class TestRoutedCheckin:
    def test_checkin_lands_on_home_member(self, federation):
        federation.assign("da-1", "site-b")
        federation.create_graph("da-1")
        dov = federation.checkin("da-1", "Cell", {"area": 1.0})
        assert dov.dov_id in federation.member("site-b")
        assert dov.dov_id not in federation.member("site-a")
        # ... but reads are location-transparent
        assert federation.read(dov.dov_id).data == {"area": 1.0}
        assert dov.dov_id in federation

    def test_cross_member_lineage(self, federation):
        """A usage-relationship input from another site is a legal
        parent — exactly the interoperability the paper wants."""
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        source = federation.checkin("da-a", "Cell", {"area": 1.0})
        derived = federation.checkin("da-b", "Cell", {"area": 2.0},
                                     parents=(source.dov_id,))
        assert derived.parents == (source.dov_id,)
        assert federation.placement_of("da-b") == "site-b"

    def test_unknown_parent_rejected(self, federation):
        federation.create_graph("da-1")
        with pytest.raises(UnknownObjectError):
            federation.checkin("da-1", "Cell", {"area": 1.0},
                               parents=("dov-404",))

    def test_two_phase_abort(self, federation):
        federation.create_graph("da-1")
        staged = federation.stage_checkin("da-1", "Cell", {"area": 1.0},
                                          (), 0.0)
        assert federation.abort_checkin(staged.dov_id) is True
        assert staged.dov_id not in federation


class TestMemberFailure:
    def test_one_member_crash_leaves_other_serving(self, federation):
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        dov_a = federation.checkin("da-a", "Cell", {"area": 1.0})
        dov_b = federation.checkin("da-b", "Cell", {"area": 2.0})
        federation.crash_member("site-a")
        # site-b unaffected
        assert federation.read(dov_b.dov_id).data == {"area": 2.0}
        # site-a recovers from its own WAL
        federation.recover_member("site-a")
        assert federation.read(dov_a.dov_id).data == {"area": 1.0}

    def test_cross_member_read_of_crashed_member_raises_storage_error(
            self, federation):
        """A directory-routed read must surface the member outage as a
        StorageError — the DOV *exists*, its member is just down — and
        serve again cleanly after the member recovers."""
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        dov_a = federation.checkin("da-a", "Cell", {"area": 1.0})
        federation.crash_member("site-a")
        # the directory still locates the DOV; the member refuses
        with pytest.raises(StorageError):
            federation.read(dov_a.dov_id)
        # a genuinely unknown DOV keeps its distinct error
        with pytest.raises(UnknownObjectError):
            federation.read("dov-nowhere")
        federation.recover_member("site-a")
        assert federation.read(dov_a.dov_id).data == {"area": 1.0}

    def test_stats(self, federation):
        federation.create_graph("da-1")
        federation.checkin("da-1", "Cell", {"area": 1.0})
        stats = federation.stats()
        assert stats["members"] == 2
        assert stats["placements"] == 1
        assert stats["directory_entries"] == 1


class TestCheckpointing:
    def test_recover_from_checkpoint(self):
        repo = DesignDataRepository(IdGenerator())
        repo.register_dot(make_dot())
        repo.create_graph("da-1")
        first = repo.checkin("da-1", "Cell", {"area": 1.0})
        second = repo.checkin("da-1", "Cell", {"area": 2.0},
                              parents=(first.dov_id,))
        truncated = repo.checkpoint()
        assert truncated >= 2
        # post-checkpoint activity lands in the WAL tail
        third = repo.checkin("da-1", "Cell", {"area": 3.0},
                             parents=(second.dov_id,))
        repo.crash()
        report = repo.recover()
        assert report["versions"] == 3
        graph = repo.graph("da-1")
        assert graph.is_ancestor(first.dov_id, third.dov_id)

    def test_checkpoint_shrinks_wal(self):
        repo = DesignDataRepository(IdGenerator())
        repo.register_dot(make_dot())
        repo.create_graph("da-1")
        for i in range(10):
            repo.checkin("da-1", "Cell", {"area": float(i)})
        before = len(repo.wal)
        repo.checkpoint()
        assert len(repo.wal) < before

    def test_repeated_checkpoints(self):
        repo = DesignDataRepository(IdGenerator())
        repo.register_dot(make_dot())
        repo.create_graph("da-1")
        repo.checkin("da-1", "Cell", {"area": 1.0})
        repo.checkpoint()
        repo.checkin("da-1", "Cell", {"area": 2.0})
        repo.checkpoint()
        repo.crash()
        report = repo.recover()
        assert report["versions"] == 2


class TestShippingSurface:
    """The read-path metadata + commit routing the data-shipping
    protocol consumes (payload sizes, version stamps, invalidation
    targets routed through the directory)."""

    def test_describe_routes_through_the_directory(self, federation):
        federation.assign("da-a", "site-a")
        federation.create_graph("da-a")
        dov = federation.checkin("da-a", "Cell", {"area": 1.0})
        description = federation.describe(dov.dov_id)
        assert description["dov_id"] == dov.dov_id
        assert description["payload_size"] == dov.payload_size
        assert description["stamp"] == dov.stamp
        assert description["member"] == "site-a"

    def test_invalidation_targets_cross_members(self, federation):
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        parent = federation.checkin("da-a", "Cell", {"area": 1.0})
        # da-b derives from da-a's version: the parent lives on the
        # *other* member, only the directory can resolve it
        child = federation.checkin("da-b", "Cell", {"area": 2.0},
                                   parents=(parent.dov_id,))
        assert federation.invalidation_targets(child) \
            == [parent.dov_id]

    def test_commit_notices_route_from_the_owning_member(self,
                                                         federation):
        federation.assign("da-a", "site-a")
        federation.create_graph("da-a")
        committed = []
        federation.on_commit = lambda dov: committed.append(dov.dov_id)
        dov = federation.checkin("da-a", "Cell", {"area": 1.0})
        assert committed == [dov.dov_id]
        assert federation.owner_of(dov.dov_id) == "site-a"


class TestHashPlacement:
    def test_ring_placement_is_deterministic(self):
        members = [f"site-{i}" for i in range(4)]
        das = [f"da-{i}" for i in range(16)]
        first = PlacementIndex(members, placement="hash")
        second = PlacementIndex(members, placement="hash")
        assert [first.place(d) for d in das] \
            == [second.place(d) for d in das]

    def test_ring_placement_ignores_arrival_order(self):
        """A DA's home is a pure function of its id and the member
        set — no coordinator counter, unlike round-robin."""
        members = ["site-a", "site-b", "site-c"]
        alone = PlacementIndex(members, placement="hash")
        crowded = PlacementIndex(members, placement="hash")
        for i in range(10):
            crowded.place(f"other-{i}")
        assert alone.place("da-x") == crowded.place("da-x")

    def test_ring_spreads_across_members(self):
        index = PlacementIndex([f"site-{i}" for i in range(4)],
                               placement="hash")
        homes = {index.place(f"da-{i}") for i in range(32)}
        assert len(homes) >= 3

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            PlacementIndex(["site-a"], placement="random")

    def test_hash_federation_routes_like_the_ring(self):
        ids = IdGenerator()
        fed = FederatedRepository(
            {f"site-{i}": DesignDataRepository(ids) for i in range(3)},
            placement="hash")
        fed.register_dot(make_dot())
        oracle = PlacementIndex([f"site-{i}" for i in range(3)],
                                placement="hash")
        for i in range(6):
            da_id = f"da-{i}"
            fed.create_graph(da_id)
            home = oracle.place(da_id)
            assert fed.placement_of(da_id) == home
            dov = fed.checkin(da_id, "Cell", {"area": float(i)})
            assert fed.owner_of(dov.dov_id) == home

    def test_assign_still_overrides_the_ring(self):
        ids = IdGenerator()
        fed = FederatedRepository(
            {f"site-{i}": DesignDataRepository(ids) for i in range(3)},
            placement="hash")
        fed.register_dot(make_dot())
        fed.assign("da-pinned", "site-2")
        fed.create_graph("da-pinned")
        assert fed.placement_of("da-pinned") == "site-2"


class TestFastPathCompat:
    def test_staged_resolution_identical_on_both_paths(self, federation):
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        staged = [
            federation.stage_checkin("da-a", "Cell", {"area": 1.0},
                                     (), 0.0).dov_id,
            federation.stage_checkin("da-b", "Cell", {"area": 2.0},
                                     (), 0.0).dov_id,
        ]
        fast = {i: federation._staged_home_of(i)
                for i in staged + ["dov-404"]}
        with federation_fast_path(False):
            compat = {i: federation._staged_home_of(i)
                      for i in staged + ["dov-404"]}
        assert fast == compat
        assert fast[staged[0]] == "site-a"
        assert fast["dov-404"] is None

    def test_commit_group_identical_on_compat_path(self):
        def run():
            ids = IdGenerator()
            fed = FederatedRepository({
                "site-a": DesignDataRepository(ids),
                "site-b": DesignDataRepository(ids)})
            fed.register_dot(make_dot())
            fed.assign("da-a", "site-a")
            fed.assign("da-b", "site-b")
            fed.create_graph("da-a")
            fed.create_graph("da-b")
            staged = [
                fed.stage_checkin("da-a", "Cell", {"area": 1.0},
                                  (), 0.0).dov_id,
                fed.stage_checkin("da-b", "Cell", {"area": 2.0},
                                  (), 0.0).dov_id,
            ]
            dovs = fed.commit_group(staged)
            return [d.dov_id for d in dovs], fed.directory_snapshot()

        fast_result = run()
        with federation_fast_path(False):
            compat_result = run()
        assert fast_result == compat_result

    def test_abort_checkin_identical_on_compat_path(self, federation):
        federation.create_graph("da-1")
        with federation_fast_path(False):
            staged = federation.stage_checkin(
                "da-1", "Cell", {"area": 1.0}, (), 0.0)
            assert federation.abort_checkin(staged.dov_id) is True
            assert federation.abort_checkin(staged.dov_id) is False
        # the index was maintained even while the flag was off
        assert federation.placement_index.stats()["staged_index"] == 0


class TestSingleMemberBatchFailure:
    def test_down_member_aborts_single_member_batch(self, federation):
        """A batch resolving entirely to one member must notice the
        member is down *before* committing — presumed abort, with the
        stale staged-index entries cleaned up."""
        federation.assign("da-a", "site-a")
        federation.create_graph("da-a")
        head = federation.checkin("da-a", "Cell", {"area": 1.0})
        staged = [
            federation.stage_checkin("da-a", "Cell", {"area": 2.0},
                                     (head.dov_id,), 1.0).dov_id,
            federation.stage_checkin("da-a", "Cell", {"area": 3.0},
                                     (head.dov_id,), 1.0).dov_id,
        ]
        # the member dies without the coordinator noticing: the index
        # still maps the staged ids to it
        federation.member("site-a").crash()
        with pytest.raises(StorageError, match="presumed abort"):
            federation.commit_group(staged)
        assert federation.placement_index.stats()["staged_index"] == 0
        for dov_id in staged:
            assert dov_id not in federation
        # after recovery the DA serves a fresh batch normally
        federation.recover_member("site-a")
        retry = federation.stage_checkin("da-a", "Cell", {"area": 2.0},
                                         (head.dov_id,), 2.0)
        committed = federation.commit_group([retry.dov_id])
        assert [d.dov_id for d in committed] == [retry.dov_id]

    def test_down_member_aborts_on_compat_path_too(self, federation):
        federation.assign("da-a", "site-a")
        federation.create_graph("da-a")
        staged = federation.stage_checkin("da-a", "Cell", {"area": 1.0},
                                          (), 0.0)
        federation.member("site-a").crash()
        with federation_fast_path(False):
            with pytest.raises(StorageError):
                federation.commit_group([staged.dov_id])


class TestDirectoryRecovery:
    def test_crash_member_reports_dropped_staged_entries(
            self, federation):
        federation.assign("da-a", "site-a")
        federation.create_graph("da-a")
        for area in (1.0, 2.0):
            federation.stage_checkin("da-a", "Cell", {"area": area},
                                     (), 0.0)
        report = federation.crash_member("site-a")
        assert report["staged_index_dropped"] == 2
        assert federation.placement_index.stats()["staged_index"] == 0

    def test_recover_directory_counters(self, federation):
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        federation.checkin("da-a", "Cell", {"area": 1.0})
        federation.checkin("da-b", "Cell", {"area": 2.0})
        federation.stage_checkin("da-b", "Cell", {"area": 3.0}, (), 0.0)
        report = federation.recover_directory()
        assert report == {"placements": 2, "staged_index": 1,
                          "directory_entries": 2, "members_down": 0}

    def test_down_member_keeps_its_prior_directory_entries(
            self, federation):
        """recover_directory with a member still down: the surviving
        index entries for that member are carried over instead of
        silently dropped."""
        federation.assign("da-a", "site-a")
        federation.assign("da-b", "site-b")
        federation.create_graph("da-a")
        federation.create_graph("da-b")
        dov_a = federation.checkin("da-a", "Cell", {"area": 1.0})
        federation.crash_member("site-a")
        report = federation.recover_directory()
        assert report["members_down"] == 1
        assert federation.owner_of(dov_a.dov_id) == "site-a"
        assert federation.placement_of("da-a") == "site-a"

    def test_stats_exposes_the_index_surfaces(self, federation):
        federation.create_graph("da-1")
        federation.stage_checkin("da-1", "Cell", {"area": 1.0}, (), 0.0)
        stats = federation.stats()
        assert stats["placement"] == "directory"
        assert stats["staged_index"] == 1
        assert stats["decision_log"]["decisions"] == 0
