"""Tests for the software-engineering domain (tools, methodology,
end-to-end development DA)."""

from __future__ import annotations

import pytest

from repro.core.system import ConcordSystem
from repro.dc.design_manager import DesignerPolicy
from repro.se.methodology import (
    development_script,
    module_script,
    release_spec,
    se_constraints,
)
from repro.se.tools import (
    compile_units,
    debug,
    edit,
    integrate,
    register_se_tools,
    review_passes,
    se_dots,
    specify,
    unit_test,
)
from repro.te.context import DopContext
from repro.util.errors import WorkflowError


def seeded_context(features=("auth", "ui")) -> DopContext:
    return DopContext(data={
        "name": "app", "kind": "system",
        "requirements": {"features": list(features)},
    })


class TestSeDots:
    def test_part_of_chain(self):
        dots = se_dots()
        assert dots["SwModule"].is_part_of(dots["SwSystem"])
        assert dots["SourceUnit"].is_part_of(dots["SwSystem"])

    def test_negative_defects_rejected(self):
        dots = se_dots()
        problems = dots["SwSystem"].validate(
            {"name": "x", "kind": "system", "defects": -1})
        assert problems


class TestSeTools:
    def test_specify_creates_units(self):
        context = seeded_context(("a", "b", "c"))
        specify(context, {})
        assert set(context.data["sources"]) == \
               {"unit_a", "unit_b", "unit_c"}
        assert context.data["defects"] == 0

    def test_specify_requires_requirements(self):
        with pytest.raises(WorkflowError):
            specify(DopContext(data={"name": "x"}), {})

    def test_edit_plants_seeded_defects(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 1.0})
        assert context.data["defects"] == 2 * len(context.data["sources"])
        for unit in context.data["sources"].values():
            assert unit["lines"] == 100

    def test_edit_deterministic(self):
        a, b = seeded_context(), seeded_context()
        for context in (a, b):
            specify(context, {})
            edit(context, {"seed": 5})
        assert a.data["defects"] == b.data["defects"]

    def test_compile_fails_syntax_defects(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 1.0})
        compile_units(context, {})
        assert context.data["objects"] == {}
        assert len(context.data["test_report"]["compile_failures"]) == 2

    def test_compile_clean_sources(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 0.0})
        compile_units(context, {})
        assert len(context.data["objects"]) == 2

    def test_unit_test_coverage_and_failures(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 0.0})
        compile_units(context, {})
        unit_test(context, {})
        assert context.data["coverage"] == 1.0
        assert context.data["test_report"]["failures"] == 0

    def test_debug_removes_defects(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 1.0})
        debug(context, {})
        assert context.data["defects"] == 0

    def test_integrate_requires_full_compile(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 1.0})
        compile_units(context, {})
        with pytest.raises(WorkflowError):
            integrate(context, {})

    def test_integrate_builds_release(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 0.0})
        compile_units(context, {})
        unit_test(context, {})
        integrate(context, {})
        release = context.data["release"]
        assert release["units"] == ["unit_auth", "unit_ui"]
        assert release["defects"] == 0

    def test_review_gate(self):
        context = seeded_context()
        specify(context, {})
        edit(context, {"seed": 1, "defect_rate": 0.0})
        compile_units(context, {})
        unit_test(context, {})
        integrate(context, {})
        assert review_passes(context.data)
        assert not review_passes({"defects": 0})  # no release


class TestSeMethodology:
    def test_constraints_reject_test_before_compile(self):
        constraints = se_constraints()
        assert constraints.violations(
            ["specify", "edit", "unit_test"]) != []

    def test_constraints_accept_full_cycle(self):
        constraints = se_constraints()
        sequence = ["specify", "edit", "compile_units", "unit_test",
                    "debug", "compile_units", "unit_test", "integrate"]
        assert constraints.violations(sequence) == []

    def test_debug_must_be_followed_by_compile(self):
        constraints = se_constraints()
        bad = ["specify", "edit", "compile_units", "unit_test", "debug"]
        assert any("followed" in v for v in constraints.violations(bad))

    def test_development_script_statically_valid(self):
        constraints = se_constraints()
        assert constraints.validate_script(development_script(),
                                           max_iterations=2) == []

    def test_module_script_valid(self):
        constraints = se_constraints()
        assert constraints.validate_script(module_script(),
                                           max_iterations=2) == []

    def test_release_spec_features(self):
        spec = release_spec(max_defects=0, min_coverage=1.0)
        good = {"defects": 0, "coverage": 1.0,
                "release": {"units": ["u"]}}
        assert spec.is_final(good)
        assert not spec.is_final({**good, "defects": 3})
        assert not spec.is_final({**good, "release": None})


class TestSeEndToEnd:
    def _build(self):
        system = ConcordSystem(trace=False)
        system.add_workstation("ws-1")
        register_se_tools(system.tools)
        system.constraints = se_constraints()
        dots = se_dots()
        for dot in dots.values():
            system.repository.register_dot(dot)
        da = system.init_design(
            dots["SwSystem"], release_spec(), "dev",
            development_script(), "ws-1",
            initial_data={"name": "app", "kind": "system",
                          "requirements": {"features":
                                           ["auth", "search", "ui"]}})
        system.start(da.da_id)
        return system, da

    class DevPolicy(DesignerPolicy):
        def __init__(self, system, da_id):
            self.system = system
            self.da_id = da_id

        def loop_decision(self, action):
            graph = self.system.repository.graph(self.da_id)
            latest = max(graph.leaves(), key=lambda d: d.created_at)
            clean = (latest.get("defects", 1) == 0
                     and latest.get("coverage", 0.0) >= 1.0)
            return "exit" if clean else "again"

        def dop_params(self, step):
            params = dict(step.params)
            if step.tool == "edit":
                params["seed"] = 3
            return params

    def test_development_reaches_release(self):
        system, da = self._build()
        status = system.run(da.da_id,
                            policy=self.DevPolicy(system, da.da_id))
        assert status.done
        assert da.final_dovs
        leaf = max(system.repository.graph(da.da_id).leaves(),
                   key=lambda d: d.created_at)
        assert leaf.data["release"]["defects"] == 0

    def test_development_is_long_duration(self):
        system, da = self._build()
        system.run(da.da_id, policy=self.DevPolicy(system, da.da_id))
        # specify+edit alone are 360 simulated minutes
        assert system.clock.now > 360.0

    def test_same_machinery_as_vlsi(self):
        """The identical DA/DM/TM stack drives both domains."""
        system, da = self._build()
        system.run(da.da_id, policy=self.DevPolicy(system, da.da_id))
        graph = system.repository.graph(da.da_id)
        assert len(graph) >= 8   # DOV0 + one version per DOP
        # every derived DOV has a parent chain back to DOV0
        leaf = max(graph.leaves(), key=lambda d: d.created_at)
        assert graph.root_id in graph.ancestors_of(leaf.dov_id)
