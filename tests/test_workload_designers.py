"""Tests for the reusable designer policies."""

from __future__ import annotations

from repro.core.features import DesignSpecification, RangeFeature
from repro.core.system import ConcordSystem
from repro.dc.script import (
    Alternative,
    DaOpStep,
    DopStep,
    Iteration,
    Open,
    Script,
    Sequence,
)
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.workload.designers import (
    GoalDrivenPolicy,
    ScriptedPolicy,
    SeededPolicy,
)


def build_system():
    system = ConcordSystem(trace=False)
    system.add_workstation("ws-1")
    system.tools.register(
        "halve", lambda ctx, p: ctx.data.update(
            area=ctx.data.get("area", 512.0) / 2), duration=5.0)
    system.tools.register("noop", lambda ctx, p: None, duration=1.0)
    return system


def make_da(system, script, initial_area=512.0, hi=100.0):
    dot = DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)])
    spec = DesignSpecification([RangeFeature("area-limit", "area",
                                             hi=hi)])
    da = system.init_design(dot, spec, "d", script, "ws-1",
                            initial_data={"area": initial_area})
    system.start(da.da_id)
    return da


class TestGoalDrivenPolicy:
    def test_iterates_until_final(self):
        system = build_system()
        script = Script(Iteration(
            Sequence(DopStep("halve"), DaOpStep("Evaluate")),
            max_rounds=10))
        da = make_da(system, script)   # 512 -> 256 -> 128 -> 64
        status = system.run(da.da_id,
                            policy=GoalDrivenPolicy(system, da.da_id))
        assert status.done
        assert da.final_dovs
        assert system.runtime(da.da_id).dm.executed_dops == 3

    def test_custom_predicate(self):
        system = build_system()
        script = Script(Iteration(DopStep("halve"), max_rounds=10))
        da = make_da(system, script)
        policy = GoalDrivenPolicy(
            system, da.da_id,
            satisfied=lambda data: data.get("area", 1e9) < 300.0)
        system.run(da.da_id, policy=policy)
        assert system.runtime(da.da_id).dm.executed_dops == 1  # 256

    def test_params_by_tool(self):
        system = build_system()
        seen = {}
        system.tools.register(
            "probe", lambda ctx, p: seen.update(p), duration=1.0)
        script = Script(Sequence(DopStep("probe")))
        da = make_da(system, script)
        policy = GoalDrivenPolicy(system, da.da_id,
                                  params_by_tool={"probe": {"k": 7}})
        system.run(da.da_id, policy=policy)
        assert seen["k"] == 7


class TestSeededPolicy:
    def test_deterministic_decisions(self):
        system_a = build_system()
        system_b = build_system()
        script = Script(Sequence(
            Alternative(DopStep("halve"), DopStep("noop")),
            Iteration(DopStep("noop"), max_rounds=4),
            Open(allowed_tools=("noop",)),
        ))
        results = []
        for system in (system_a, system_b):
            da = make_da(system, script)
            system.run(da.da_id, policy=SeededPolicy(
                seed=11, insertable_tools=("noop",)))
            results.append(system.runtime(da.da_id).dm.executed_tools)
        assert results[0] == results[1]

    def test_different_seeds_can_diverge(self):
        outcomes = set()
        for seed in range(6):
            system = build_system()
            script = Script(Alternative(DopStep("halve"),
                                        DopStep("noop")))
            da = make_da(system, script)
            system.run(da.da_id, policy=SeededPolicy(seed=seed))
            outcomes.add(tuple(
                system.runtime(da.da_id).dm.executed_tools))
        assert len(outcomes) == 2  # both alternatives explored

    def test_completes_scripts(self):
        for seed in range(5):
            system = build_system()
            script = Script(Sequence(
                Iteration(DopStep("noop"), max_rounds=3),
                Open(allowed_tools=("noop",)),
            ))
            da = make_da(system, script)
            status = system.run(da.da_id, policy=SeededPolicy(
                seed=seed, insertable_tools=("noop",),
                insert_probability=0.5))
            assert status.done


class TestScriptedPolicy:
    def test_tape_replay(self):
        system = build_system()
        script = Script(Sequence(
            Alternative(DopStep("halve"), DopStep("noop")),
            Iteration(DopStep("noop"), max_rounds=3),
        ))
        da = make_da(system, script)
        policy = ScriptedPolicy(alternatives=[1],
                                loops=["again", "exit"])
        system.run(da.da_id, policy=policy)
        dm = system.runtime(da.da_id).dm
        assert dm.executed_tools == ["noop", "noop", "noop"]
        assert policy.exhausted

    def test_defaults_after_exhaustion(self):
        system = build_system()
        script = Script(Sequence(
            Alternative(DopStep("halve"), DopStep("noop")),
            Alternative(DopStep("halve"), DopStep("noop")),
        ))
        da = make_da(system, script)
        policy = ScriptedPolicy(alternatives=[1])  # only one decision
        system.run(da.da_id, policy=policy)
        dm = system.runtime(da.da_id).dm
        # second alternative fell back to the default (path 0)
        assert dm.executed_tools == ["noop", "halve"]
