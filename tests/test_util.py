"""Unit tests for repro.util: ids, rng, trace, errors."""

from __future__ import annotations

import pytest

from repro.util.errors import (
    ConcordError,
    IllegalTransitionError,
    LockConflictError,
    RepositoryError,
    SchemaError,
)
from repro.util.ids import IdGenerator
from repro.util.rng import SeededRng
from repro.util.trace import EventTrace, Level


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("da") == "da-1"
        assert gen.next("da") == "da-2"
        assert gen.next("dov") == "dov-1"
        assert gen.next("da") == "da-3"

    def test_reset(self):
        gen = IdGenerator()
        gen.next("x")
        gen.reset()
        assert gen.next("x") == "x-1"

    def test_independent_generators(self):
        a, b = IdGenerator(), IdGenerator()
        a.next("da")
        assert b.next("da") == "da-1"


class TestSeededRng:
    def test_determinism(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == \
               [b.randint(0, 100) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(5)] != \
               [b.random() for _ in range(5)]

    def test_bounded_normal_respects_bounds(self):
        rng = SeededRng(7)
        for _ in range(200):
            value = rng.bounded_normal(10.0, 50.0, 0.0, 20.0)
            assert 0.0 <= value <= 20.0

    def test_zipf_index_in_range(self):
        rng = SeededRng(3)
        for _ in range(100):
            assert 0 <= rng.zipf_index(10, 1.0) < 10

    def test_zipf_skews_to_low_indices(self):
        rng = SeededRng(5)
        draws = [rng.zipf_index(20, 1.5) for _ in range(500)]
        low = sum(1 for d in draws if d < 5)
        assert low > len(draws) / 2

    def test_zipf_requires_positive_n(self):
        with pytest.raises(ValueError):
            SeededRng(0).zipf_index(0)

    def test_zipf_zero_skew_is_uniformish(self):
        rng = SeededRng(11)
        draws = [rng.zipf_index(4, 0.0) for _ in range(400)]
        for i in range(4):
            assert draws.count(i) > 50

    def test_fork_independent(self):
        rng = SeededRng(9)
        child_a = rng.fork(1)
        child_b = rng.fork(2)
        assert child_a.random() != child_b.random()

    def test_exponential_mean_zero(self):
        assert SeededRng(0).exponential(0.0) == 0.0

    def test_bernoulli_extremes(self):
        rng = SeededRng(0)
        assert all(rng.bernoulli(1.0) for _ in range(10))
        assert not any(rng.bernoulli(0.0) for _ in range(10))

    def test_sample_and_shuffle(self):
        rng = SeededRng(4)
        items = list(range(10))
        picked = rng.sample(items, 3)
        assert len(set(picked)) == 3
        rng.shuffle(items)
        assert sorted(items) == list(range(10))


class TestEventTrace:
    def test_record_and_counts(self):
        trace = EventTrace()
        trace.record(0.0, Level.AC, "CM", "Init_Design", "da-1")
        trace.record(1.0, Level.TE, "client-TM:ws-1", "checkout", "dov-1")
        trace.record(2.0, Level.TE, "server-TM", "checkin", "dov-2")
        assert len(trace) == 3
        assert trace.count_by_level() == {Level.AC: 1, Level.TE: 2}

    def test_disabled_trace_records_nothing(self):
        trace = EventTrace(enabled=False)
        assert trace.record(0.0, Level.AC, "CM", "x") is None
        assert len(trace) == 0

    def test_by_component_prefix(self):
        trace = EventTrace()
        trace.record(0.0, Level.TE, "client-TM:ws-1", "a")
        trace.record(0.0, Level.TE, "client-TM:ws-2", "b")
        trace.record(0.0, Level.TE, "client-TM", "c")
        assert len(trace.by_component("client-TM")) == 3
        assert len(trace.by_component("client-TM:ws-1")) == 1

    def test_operations_filter(self):
        trace = EventTrace()
        trace.record(0.0, Level.DC, "DM", "dop_start", "d1")
        trace.record(0.0, Level.DC, "DM", "dop_commit", "d1")
        assert len(trace.operations("dop_start")) == 1
        assert len(trace.operations("dop_start", "dop_commit")) == 2

    def test_count_by_operation_per_level(self):
        trace = EventTrace()
        trace.record(0.0, Level.AC, "CM", "Propagate")
        trace.record(0.0, Level.DC, "DM", "Propagate")
        assert trace.count_by_operation(Level.AC) == {"Propagate": 1}

    def test_clear(self):
        trace = EventTrace()
        trace.record(0.0, Level.AC, "CM", "x")
        trace.clear()
        assert len(trace) == 0

    def test_sequence_numbers_monotone(self):
        trace = EventTrace()
        first = trace.record(0.0, Level.AC, "CM", "a")
        second = trace.record(0.0, Level.AC, "CM", "b")
        assert second.seq == first.seq + 1

    def test_render_limit(self):
        trace = EventTrace()
        for i in range(5):
            trace.record(float(i), Level.SIM, "drv", f"op{i}")
        assert len(trace.render(2).splitlines()) == 2


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SchemaError, RepositoryError)
        assert issubclass(RepositoryError, ConcordError)
        assert issubclass(IllegalTransitionError, ConcordError)

    def test_lock_conflict_carries_holder(self):
        exc = LockConflictError("boom", holder="da-2")
        assert exc.holder == "da-2"

    def test_illegal_transition_carries_context(self):
        exc = IllegalTransitionError("nope", state="active",
                                     operation="Start")
        assert exc.state == "active"
        assert exc.operation == "Start"
