"""Unit tests for two-phase commit and its optimisations."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.net.network import Network, NodeKind
from repro.net.two_phase_commit import (
    CommitProtocol,
    Decision,
    TwoPhaseCoordinator,
    Vote,
)
from repro.util.errors import TwoPhaseCommitError


@dataclass
class Participant:
    node_id: str
    vote: Vote = Vote.YES
    log: list = field(default_factory=list)

    def prepare(self, txn_id):
        self.log.append("prepare")
        return self.vote

    def commit(self, txn_id):
        self.log.append("commit")

    def abort(self, txn_id):
        self.log.append("abort")


def rig(n=2, protocol=CommitProtocol.PRESUMED_ABORT, ro=True):
    network = Network()
    network.add_node("coord", NodeKind.WORKSTATION)
    parts = []
    for i in range(n):
        network.add_node(f"p{i}", NodeKind.SERVER)
        parts.append(Participant(f"p{i}"))
    coordinator = TwoPhaseCoordinator(network, "coord", protocol=protocol,
                                      read_only_optimisation=ro)
    return network, coordinator, parts


class TestCommitPath:
    def test_all_yes_commits(self):
        __, coordinator, parts = rig()
        outcome = coordinator.execute("t1", parts)
        assert outcome.committed
        for part in parts:
            assert part.log == ["prepare", "commit"]

    def test_commit_message_count(self):
        __, coordinator, parts = rig(n=3)
        outcome = coordinator.execute("t1", parts)
        # per participant: request + vote + decision + ack = 4
        assert outcome.messages == 12

    def test_commit_forced_writes(self):
        __, coordinator, parts = rig(n=3)
        outcome = coordinator.execute("t1", parts)
        # 3 prepare records + 1 coordinator decision + 3 commit records
        assert outcome.forced_log_writes == 7

    def test_decision_logged_durably(self):
        network, coordinator, parts = rig()
        coordinator.execute("t1", parts)
        assert coordinator.logged_decision("t1") is Decision.COMMIT
        network.crash_node("coord")
        network.restart_node("coord")
        assert coordinator.logged_decision("t1") is Decision.COMMIT


class TestAbortPath:
    def test_one_no_aborts(self):
        __, coordinator, parts = rig(n=3)
        parts[1].vote = Vote.NO
        outcome = coordinator.execute("t1", parts)
        assert not outcome.committed
        assert outcome.no_voters == ["p1"]
        assert parts[0].log == ["prepare", "abort"]
        assert parts[1].log == ["prepare"]  # voted no: aborts locally

    def test_presumed_abort_saves_messages_and_writes(self):
        __, pa, parts_pa = rig(n=3, protocol=CommitProtocol.PRESUMED_ABORT)
        parts_pa[2].vote = Vote.NO
        pa_outcome = pa.execute("t1", parts_pa)

        __, basic, parts_b = rig(n=3, protocol=CommitProtocol.BASIC)
        parts_b[2].vote = Vote.NO
        basic_outcome = basic.execute("t1", parts_b)

        assert pa_outcome.messages < basic_outcome.messages
        assert pa_outcome.forced_log_writes < basic_outcome.forced_log_writes

    def test_presumed_abort_logs_no_abort_record(self):
        __, coordinator, parts = rig(protocol=CommitProtocol.PRESUMED_ABORT)
        parts[0].vote = Vote.NO
        coordinator.execute("t1", parts)
        assert coordinator.logged_decision("t1") is None
        # ... which presumed-abort resolution interprets as ABORT
        assert coordinator.resolve_in_doubt("t1") is Decision.ABORT

    def test_basic_logs_abort_record(self):
        __, coordinator, parts = rig(protocol=CommitProtocol.BASIC)
        parts[0].vote = Vote.NO
        coordinator.execute("t1", parts)
        assert coordinator.logged_decision("t1") is Decision.ABORT

    def test_basic_unknown_in_doubt_is_error(self):
        __, coordinator, __parts = rig(protocol=CommitProtocol.BASIC)
        with pytest.raises(TwoPhaseCommitError):
            coordinator.resolve_in_doubt("never-ran")


class TestReadOnlyOptimisation:
    def test_read_only_skips_phase_two(self):
        __, coordinator, parts = rig(n=3)
        parts[0].vote = Vote.READ_ONLY
        outcome = coordinator.execute("t1", parts)
        assert outcome.committed
        assert outcome.read_only_participants == ["p0"]
        assert parts[0].log == ["prepare"]       # no commit call
        assert parts[1].log == ["prepare", "commit"]

    def test_read_only_saves_cost(self):
        __, with_ro, parts_a = rig(n=3, ro=True)
        for part in parts_a[:2]:
            part.vote = Vote.READ_ONLY
        ro_outcome = with_ro.execute("t1", parts_a)

        __, without_ro, parts_b = rig(n=3, ro=False)
        for part in parts_b[:2]:
            part.vote = Vote.READ_ONLY
        plain_outcome = without_ro.execute("t1", parts_b)

        assert ro_outcome.messages < plain_outcome.messages
        assert ro_outcome.forced_log_writes < plain_outcome.forced_log_writes

    def test_disabled_ro_treated_as_yes(self):
        __, coordinator, parts = rig(n=2, ro=False)
        parts[0].vote = Vote.READ_ONLY
        outcome = coordinator.execute("t1", parts)
        assert outcome.committed
        assert parts[0].log == ["prepare", "commit"]


class TestParticipantFailure:
    def test_down_participant_means_abort(self):
        network, coordinator, parts = rig(n=2)
        network.crash_node("p1")
        outcome = coordinator.execute("t1", parts)
        assert not outcome.committed
        assert parts[0].log == ["prepare", "abort"]

    def test_crash_after_prepare_vote_lost_means_abort(self):
        network, coordinator, parts = rig(n=2)

        @dataclass
        class PrepareThenCrash(Participant):
            def prepare(self, txn_id):
                self.log.append("prepare")
                network.crash_node(self.node_id)
                return Vote.YES   # the vote message will be lost

        parts[1] = PrepareThenCrash("p1")
        outcome = coordinator.execute("t1", parts)
        # the coordinator never received p1's YES -> abort
        assert outcome.decision is Decision.ABORT
        # p1 is in doubt after restart; presumed abort resolves it
        network.restart_node("p1")
        assert coordinator.resolve_in_doubt("t1") is Decision.ABORT
