"""Unit tests for recovery points (client-TM side)."""

from __future__ import annotations

import pytest

from repro.net.network import StableStorage
from repro.te.context import DopContext, SavepointStack
from repro.te.recovery import RecoveryManager, RecoveryPointPolicy
from repro.util.errors import RecoveryError


@pytest.fixture
def manager():
    return RecoveryManager(StableStorage(),
                           RecoveryPointPolicy(interval=30.0))


class TestPolicy:
    def test_interval_due(self):
        policy = RecoveryPointPolicy(interval=30.0)
        assert not policy.due(29.9)
        assert policy.due(30.0)

    def test_zero_interval_never_due(self):
        policy = RecoveryPointPolicy(interval=0.0)
        assert not policy.due(1e9)

    def test_after_checkout_default(self):
        assert RecoveryPointPolicy().after_checkout


class TestRecoveryManager:
    def test_take_and_restore(self, manager):
        context = DopContext(data={"v": 1}, work_done=10.0)
        savepoints = SavepointStack()
        savepoints.save("sp", context)
        manager.take("dop-1", context, savepoints, taken_at=5.0,
                     reason="checkout")
        context.data["v"] = 99       # later volatile changes
        restored_ctx, restored_sps, point = manager.restore("dop-1")
        assert restored_ctx.data["v"] == 1
        assert restored_ctx.work_done == 10.0
        assert restored_sps.names() == ["sp"]
        assert point.reason == "checkout"
        assert point.taken_at == 5.0

    def test_only_latest_point_kept(self, manager):
        context = DopContext(data={"v": 1})
        manager.take("dop-1", context, SavepointStack(), 1.0, "checkout")
        context.data["v"] = 2
        manager.take("dop-1", context, SavepointStack(), 2.0, "interval")
        restored, __, point = manager.restore("dop-1")
        assert restored.data["v"] == 2
        assert point.reason == "interval"
        assert manager.points_taken == 2

    def test_restore_without_point_raises(self, manager):
        with pytest.raises(RecoveryError):
            manager.restore("dop-404")

    def test_remove_on_end_of_dop(self, manager):
        manager.take("dop-1", DopContext(), SavepointStack(), 0.0, "x")
        assert manager.has_point("dop-1")
        assert manager.remove("dop-1") is True
        assert not manager.has_point("dop-1")
        with pytest.raises(RecoveryError):
            manager.restore("dop-1")

    def test_points_per_dop_are_independent(self, manager):
        manager.take("dop-1", DopContext(data={"d": 1}),
                     SavepointStack(), 0.0, "a")
        manager.take("dop-2", DopContext(data={"d": 2}),
                     SavepointStack(), 0.0, "b")
        ctx1, __, __p1 = manager.restore("dop-1")
        ctx2, __, __p2 = manager.restore("dop-2")
        assert ctx1.data["d"] == 1
        assert ctx2.data["d"] == 2

    def test_latest_returns_none_when_absent(self, manager):
        assert manager.latest("nope") is None
