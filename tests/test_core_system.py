"""Integration tests for the ConcordSystem facade and level interplay."""

from __future__ import annotations

import pytest

from repro.core.features import DesignSpecification, RangeFeature
from repro.core.system import ConcordSystem
from repro.dc.script import DaOpStep, DopStep, Script, Sequence
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.util.errors import ConcordError
from repro.util.trace import Level


def make_dot(name="Cell", parts=None):
    return DesignObjectType(name, attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)],
        parts=parts or {})


@pytest.fixture
def system():
    sys_ = ConcordSystem()
    sys_.add_workstation("ws-1")
    sys_.add_workstation("ws-2")
    sys_.tools.register(
        "halve", lambda ctx, p: ctx.data.update(
            area=ctx.data.get("area", 200.0) / 2), duration=10.0)
    return sys_


SPEC = DesignSpecification([RangeFeature("area-limit", "area", hi=100.0)])


class TestFacade:
    def test_unknown_workstation(self, system):
        with pytest.raises(ConcordError):
            system.client_tm("ws-404")

    def test_unknown_runtime(self, system):
        with pytest.raises(ConcordError):
            system.runtime("da-404")

    def test_init_design_wires_dm(self, system):
        script = Script(Sequence(DopStep("halve")))
        da = system.init_design(make_dot(), SPEC, "alice", script,
                                "ws-1", initial_data={"area": 300.0})
        runtime = system.runtime(da.da_id)
        assert runtime.dm.binding.da_id == da.da_id
        assert runtime.client_tm.workstation == "ws-1"

    def test_step_executes_one_action(self, system):
        script = Script(Sequence(DopStep("halve"), DopStep("halve")))
        da = system.init_design(make_dot(), SPEC, "alice", script,
                                "ws-1", initial_data={"area": 300.0})
        system.start(da.da_id)
        assert system.step(da.da_id) is True
        assert system.runtime(da.da_id).dm.executed_dops == 1

    def test_sub_da_on_other_workstation(self, system):
        sub_dot = make_dot("Part")
        top_dot = make_dot("Cell", parts={"p": sub_dot})
        script = Script(Sequence(DopStep("halve")))
        top = system.init_design(top_dot, SPEC, "alice", script, "ws-1",
                                 initial_data={"area": 300.0})
        system.start(top.da_id)
        sub = system.create_sub_da(top.da_id, sub_dot, SPEC, "bob",
                                   script, "ws-2")
        assert system.runtime(sub.da_id).client_tm.workstation == "ws-2"


class TestLevelInterplay:
    def test_all_levels_traced(self, system):
        script = Script(Sequence(DopStep("halve"), DaOpStep("Evaluate")))
        da = system.init_design(make_dot(), SPEC, "alice", script,
                                "ws-1", initial_data={"area": 150.0})
        system.start(da.da_id)
        system.run(da.da_id)
        counts = system.trace.count_by_level()
        assert counts[Level.AC] >= 3   # init, start, evaluate
        assert counts[Level.DC] >= 2   # dop start/commit, da op
        assert counts[Level.TE] >= 4   # begin, checkout, checkin, end

    def test_embedded_evaluate_reaches_cm(self, system):
        script = Script(Sequence(DopStep("halve"), DaOpStep("Evaluate")))
        da = system.init_design(make_dot(), SPEC, "alice", script,
                                "ws-1", initial_data={"area": 150.0})
        system.start(da.da_id)
        system.run(da.da_id)
        assert da.final_dovs  # 150 -> 75 <= 100

    def test_embedded_require_and_propagate(self, system):
        sub_dot = make_dot("Part")
        top_dot = make_dot("Cell", parts={"p": sub_dot})
        noop = Script(Sequence(DopStep("halve")))
        top = system.init_design(top_dot, SPEC, "alice", noop, "ws-1",
                                 initial_data={"area": 160.0})
        system.start(top.da_id)
        producer_script = Script(Sequence(
            DopStep("halve"), DaOpStep("Evaluate"),
            DaOpStep("Propagate")))
        producer = system.create_sub_da(top.da_id, sub_dot, SPEC,
                                        "bob", producer_script, "ws-2",
                                        initial_dov=top.vector.initial_dov)
        consumer_script = Script(Sequence(DaOpStep(
            "Require", params={"supporting": producer.da_id,
                               "features": ["area-limit"]})))
        consumer = system.create_sub_da(top.da_id, sub_dot, SPEC,
                                        "eve", consumer_script, "ws-2")
        system.start(producer.da_id)
        system.start(consumer.da_id)
        system.run(producer.da_id)    # derives 150, evaluates, propagates
        system.run(consumer.da_id)    # requires -> delivered immediately
        usage = system.cm.usage(consumer.da_id, producer.da_id)
        assert len(usage.delivered) == 1

    def test_level_summary(self, system):
        script = Script(Sequence(DopStep("halve")))
        da = system.init_design(make_dot(), SPEC, "alice", script,
                                "ws-1", initial_data={"area": 300.0})
        system.start(da.da_id)
        system.run(da.da_id)
        summary = system.level_summary()
        assert set(summary) >= {"AC", "DC", "TE"}


class TestPickInputs:
    def test_prefers_latest_leaf(self, system):
        script = Script(Sequence(DopStep("halve"), DopStep("halve")))
        da = system.init_design(make_dot(), SPEC, "alice", script,
                                "ws-1", initial_data={"area": 400.0})
        system.start(da.da_id)
        system.run(da.da_id)
        graph = system.repository.graph(da.da_id)
        leaf = max(graph.leaves(), key=lambda d: d.created_at)
        # 400 / 2 / 2 = 100: the second DOP consumed the first's output
        assert leaf.get("area") == pytest.approx(100.0)

    def test_explicit_inputs_param(self, system):
        da = system.init_design(
            make_dot(), SPEC, "alice",
            Script(Sequence(DopStep("halve"))), "ws-1",
            initial_data={"area": 400.0})
        system.start(da.da_id)
        system.run(da.da_id)
        dov0 = system.repository.graph(da.da_id).root_id
        runtime = system.runtime(da.da_id)
        step = DopStep("halve", params={"inputs": [dov0]})
        assert runtime.binding.pick_inputs(step) == [dov0]

    def test_no_data_yet_returns_empty(self, system):
        da = system.init_design(make_dot(), SPEC, "alice",
                                Script(Sequence(DopStep("halve"))),
                                "ws-1")
        runtime = system.runtime(da.da_id)
        assert runtime.binding.pick_inputs(DopStep("halve")) == []
