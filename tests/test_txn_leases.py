"""TTL renewal leases: expiry as recall, renewal, and the race.

PR-5 acceptance surface of the lease half of the txn layer: with a
``lease_ttl`` the server stops recalling explicitly-forgotten copies —
an unrenewed lease simply expires via a kernel timer event and the
workstation's buffered copy is invalidated exactly as a recall would;
a renewal is one metadata-only message extending every lease the
workstation holds; and a renewal racing an in-flight expiry never
resurrects a dead lease.
"""

from __future__ import annotations

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.txn import LeaseTable
from repro.util.ids import IdGenerator

TTL = 10.0


def make_rig(ttl: float | None = TTL):
    """One buffered workstation under a TTL-leasing server, on a
    kernel (expiry timers are ordinary kernel events)."""
    clock = SimClock()
    kernel = Kernel(clock)
    network = Network(clock, lan_latency=0.5)
    network.attach_kernel(kernel)
    network.add_server()
    network.add_workstation("ws-1")
    rpc = TransactionalRpc(network)
    ids = IdGenerator()
    repo = DesignDataRepository(ids)
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)]))
    repo.create_graph("da-1")
    locks = LockManager()
    server_tm = ServerTM(repo, locks, network, clock=clock,
                         lease_ttl=ttl)
    server_tm.scope_check = lambda da_id, dov_id: True
    register_server_endpoints(rpc, server_tm)
    buffer = ObjectBuffer("ws-1", policy="lru")
    client = ClientTM("ws-1", server_tm, rpc, clock, ids,
                      buffer=buffer)
    dov0 = repo.checkin("da-1", "Cell", {"area": 100.0})
    return {"clock": clock, "kernel": kernel, "network": network,
            "repo": repo, "server_tm": server_tm, "client": client,
            "buffer": buffer, "dov0": dov0}


class TestLeaseTableUnit:
    def test_ttl_off_means_no_expiry(self):
        table = LeaseTable(clock=SimClock())
        table.grant("ws-1", "dov-1")
        assert table.lease("ws-1", "dov-1").expires_at is None
        assert table.expire_due() == []
        assert table.holders("dov-1") == {"ws-1"}

    def test_expire_due_sweep_without_kernel(self):
        clock = SimClock()
        table = LeaseTable(clock=clock, ttl=5.0)
        expired = []
        table.on_expire = lambda ws, dov: expired.append((ws, dov))
        table.grant("ws-1", "dov-1")
        clock.advance(4.9)
        assert table.expire_due() == []
        clock.advance(0.2)
        assert table.expire_due() == [("ws-1", "dov-1")]
        assert expired == [("ws-1", "dov-1")]
        assert table.holders("dov-1") == set()
        assert table.stats()["expirations"] == 1

    def test_renewal_extends_and_never_resurrects(self):
        clock = SimClock()
        table = LeaseTable(clock=clock, ttl=5.0)
        table.grant("ws-1", "dov-1")
        clock.advance(4.0)
        assert table.renew("ws-1", "dov-1") is True
        clock.advance(4.0)  # t=8 < 4+5: still alive
        assert table.expire_due() == []
        clock.advance(2.0)  # t=10 > 9: expires now
        assert table.expire_due() == [("ws-1", "dov-1")]
        # the lease is dead: renewing it again is a no-op
        assert table.renew("ws-1", "dov-1") is False
        assert table.holders("dov-1") == set()


class TestTtlExpiryOnKernel:
    def test_unrenewed_lease_expires_like_a_recall(self):
        rig = make_rig()
        client, buffer = rig["client"], rig["buffer"]
        dop = client.begin_dop("da-1", tool="t")
        client.checkout(dop, rig["dov0"].dov_id)
        rig["kernel"].run_until(TTL / 2)  # mid-TTL: lease still live
        assert rig["dov0"].dov_id in buffer
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == {"ws-1"}
        # idle past the TTL: the expiry event fires, the lease dies,
        # and the buffered copy is invalidated over the LAN
        rig["kernel"].run_until_quiescent()
        assert rig["clock"].now >= TTL
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == set()
        assert rig["dov0"].dov_id not in buffer
        assert buffer.invalidations == 1
        assert rig["server_tm"].leases.expirations == 1

    def test_expiry_timer_labels_are_traced(self):
        rig = make_rig()
        client = rig["client"]
        dop = client.begin_dop("da-1", tool="t")
        client.checkout(dop, rig["dov0"].dov_id)
        rig["kernel"].run_until_quiescent()
        labels = [label for *_, label in rig["kernel"].event_log]
        assert any(label.startswith("lease-expiry:") for label in labels)

    def test_renewal_message_keeps_the_copy_resident(self):
        rig = make_rig()
        client, kernel = rig["client"], rig["kernel"]
        dop = client.begin_dop("da-1", tool="t")
        client.checkout(dop, rig["dov0"].dov_id)
        # renew repeatedly while "using" the buffer; the lease must
        # survive well past several TTLs
        for _ in range(4):
            kernel.run_until(kernel.clock.now + TTL * 0.6)
            assert client.checkout(dop, rig["dov0"].dov_id) is not None
        assert rig["server_tm"].leases.renewals > 0
        assert rig["dov0"].dov_id in rig["buffer"]
        # once the designer stops, the lease decays by itself
        kernel.run_until_quiescent()
        assert rig["dov0"].dov_id not in rig["buffer"]

    def test_renewal_is_metadata_only(self):
        rig = make_rig()
        client, network = rig["client"], rig["network"]
        dop = client.begin_dop("da-1", tool="t")
        client.checkout(dop, rig["dov0"].dov_id)
        rig["kernel"].run_until(1.1)  # payload shipped + installed
        shipped_before = network.bytes_shipped
        delay = client.renew_leases()
        rig["kernel"].run_until(2.0)  # renewal delivered, no expiry yet
        renewal_bytes = network.bytes_shipped - shipped_before
        assert renewal_bytes == rig["server_tm"].invalidation_bytes
        assert renewal_bytes < rig["dov0"].payload_size
        assert delay > 0.0
        assert rig["server_tm"].leases.renewals == 1

    def test_expiry_racing_a_renewal_in_flight(self):
        """The satellite race: the renewal message is posted before
        the expiry instant but delivered after it.  The expiry wins —
        the lease dies, the copy is invalidated, and the late renewal
        must NOT resurrect anything."""
        rig = make_rig()
        client, kernel = rig["client"], rig["kernel"]
        server_tm = rig["server_tm"]
        dov_id = rig["dov0"].dov_id
        dop = client.begin_dop("da-1", tool="t")
        client.checkout(dop, dov_id)
        kernel.run_until(1.1)  # install the copy; lease expires ~11.1
        expiry_at = server_tm.leases.lease("ws-1", dov_id).expires_at
        # post the renewal DURING the run, so late that its 0.5 LAN
        # latency lands the delivery after the expiry instant
        kernel.at(expiry_at - 0.2, client.renew_leases,
                  label="late-renewal")
        kernel.run_until_quiescent()
        assert server_tm.lease_holders(dov_id) == set()
        assert dov_id not in rig["buffer"]
        assert server_tm.leases.expirations == 1
        # the late renewal extended nothing
        assert server_tm.leases.renewals == 0

    def test_determinism_two_identical_runs(self):
        def signature():
            rig = make_rig()
            client, kernel = rig["client"], rig["kernel"]
            dop = client.begin_dop("da-1", tool="t")
            client.checkout(dop, rig["dov0"].dov_id)
            for _ in range(3):
                kernel.run_until(kernel.clock.now + TTL * 0.6)
                client.checkout(dop, rig["dov0"].dov_id)
            kernel.run_until_quiescent()
            return rig["kernel"].trace_signature()

        assert signature() == signature()
