"""Unit tests for DesignActivity, description vectors, relationships."""

from __future__ import annotations

import pytest

from repro.core.activity import DescriptionVector, DesignActivity
from repro.core.features import (
    DesignSpecification,
    QualityState,
    RangeFeature,
)
from repro.core.relationships import (
    Delegation,
    Message,
    Negotiation,
    Proposal,
    ProposalStatus,
    Usage,
)
from repro.core.states import DaState
from repro.dc.script import DopStep, Script, Sequence
from repro.repository.schema import DesignObjectType
from repro.util.errors import NegotiationError


def make_da(da_id="da-1", parent=None):
    vector = DescriptionVector(
        dot=DesignObjectType("Cell"),
        spec=DesignSpecification([RangeFeature("f", "x", hi=10.0)]),
        designer="alice",
        script=Script(Sequence(DopStep("t"))),
    )
    return DesignActivity(da_id, vector, "ws-1", parent=parent)


class TestDesignActivity:
    def test_description_vector_accessors(self):
        da = make_da()
        assert da.dot.name == "Cell"
        assert da.designer == "alice"
        assert len(da.spec) == 1
        assert da.script.name == "script"
        assert da.is_top_level

    def test_sub_da_not_top_level(self):
        assert not make_da(parent="da-0").is_top_level

    def test_initial_state_generated(self):
        assert make_da().state is DaState.GENERATED

    def test_record_quality_tracks_finals(self):
        da = make_da()
        final = QualityState(frozenset({"f"}), frozenset({"f"}))
        preliminary = QualityState(frozenset(), frozenset({"f"}))
        da.record_quality("dov-1", preliminary)
        da.record_quality("dov-2", final)
        assert da.final_dovs == ["dov-2"]
        assert da.has_final_dov()

    def test_record_quality_idempotent_for_finals(self):
        da = make_da()
        final = QualityState(frozenset({"f"}), frozenset({"f"}))
        da.record_quality("dov-1", final)
        da.record_quality("dov-1", final)
        assert da.final_dovs == ["dov-1"]

    def test_revoke_finality(self):
        da = make_da()
        final = QualityState(frozenset({"f"}), frozenset({"f"}))
        da.record_quality("dov-1", final)
        da.revoke_finality("dov-1")
        assert not da.has_final_dov()

    def test_spec_setter(self):
        da = make_da()
        new_spec = DesignSpecification([RangeFeature("g", "y", hi=5.0)])
        da.spec = new_spec
        assert da.vector.spec is new_spec


class TestRelationshipRecords:
    def test_delegation_record(self):
        delegation = Delegation("da-1", "da-2", created_at=3.0)
        assert delegation.super_da == "da-1"
        assert delegation.sub_da == "da-2"

    def test_usage_key_and_bookkeeping(self):
        usage = Usage("da-req", "da-sup", frozenset({"f"}))
        assert usage.key() == ("da-req", "da-sup")
        usage.delivered.append("dov-1")
        usage.withdrawn.append("dov-0")
        assert usage.delivered == ["dov-1"]

    def test_negotiation_other(self):
        negotiation = Negotiation("n-1", "da-a", "da-b")
        assert negotiation.other("da-a") == "da-b"
        assert negotiation.other("da-b") == "da-a"
        with pytest.raises(NegotiationError):
            negotiation.other("da-x")

    def test_negotiation_open_proposal(self):
        negotiation = Negotiation("n-1", "da-a", "da-b")
        assert negotiation.open_proposal() is None
        first = Proposal("p-1", "da-a", {})
        negotiation.proposals.append(first)
        assert negotiation.open_proposal() is first
        first.status = ProposalStatus.REJECTED
        assert negotiation.open_proposal() is None
        second = Proposal("p-2", "da-b", {})
        negotiation.proposals.append(second)
        assert negotiation.open_proposal() is second
        assert negotiation.rounds() == 2

    def test_message_payload(self):
        message = Message("require", "da-1", "da-2",
                          {"features": ["f"]}, at=9.0)
        assert message.kind == "require"
        assert message.payload["features"] == ["f"]
