"""Unit tests for the chip planner toolbox and floorplans."""

from __future__ import annotations

import pytest

from repro.util.rng import SeededRng
from repro.vlsi.chip_planner import ChipPlanner, bipartition, global_route
from repro.vlsi.floorplan import (
    Floorplan,
    FloorplanInterface,
    PinInterval,
    Placement,
)
from repro.vlsi.netlist import Net, NetList, synthetic_netlist
from repro.vlsi.shapes import shapes_for_area


@pytest.fixture
def workload():
    cells = [f"c{i}" for i in range(8)]
    netlist = synthetic_netlist(cells, SeededRng(42))
    shape_functions = {c: shapes_for_area(c, 4.0 + i)
                       for i, c in enumerate(cells)}
    interface = FloorplanInterface("cud", 40.0, 40.0)
    return cells, netlist, shape_functions, interface


class TestBipartition:
    def test_partitions_cover_all_cells(self, workload):
        cells, netlist, __, __i = workload
        part_a, part_b = bipartition(netlist, {c: 1.0 for c in cells})
        assert part_a | part_b == set(cells)
        assert part_a & part_b == set()

    def test_balanced(self, workload):
        cells, netlist, __, __i = workload
        part_a, part_b = bipartition(netlist, {c: 1.0 for c in cells})
        assert abs(len(part_a) - len(part_b)) <= 2

    def test_improves_over_naive_split(self, workload):
        cells, netlist, __, __i = workload
        areas = {c: 1.0 for c in cells}
        part_a, part_b = bipartition(netlist, areas)
        optimised = netlist.cut_size(part_a, part_b)
        # compare to an arbitrary odd/even split
        odd = {c for i, c in enumerate(cells) if i % 2}
        even = set(cells) - odd
        naive = netlist.cut_size(odd, even)
        assert optimised <= naive

    def test_single_cell(self):
        netlist = NetList(cells=["a"], nets=[])
        part_a, part_b = bipartition(netlist, {"a": 1.0})
        assert part_a == {"a"}
        assert part_b == set()

    def test_two_cells(self):
        netlist = NetList(cells=["a", "b"], nets=[Net("n", ("a", "b"))])
        part_a, part_b = bipartition(netlist, {"a": 1.0, "b": 1.0})
        assert len(part_a) == 1 and len(part_b) == 1


class TestFloorplanGeometry:
    def test_planner_produces_valid_floorplan(self, workload):
        cells, netlist, shape_functions, interface = workload
        plan = ChipPlanner(iterations=3, seed=1).plan(
            "cud", netlist, shape_functions, interface)
        assert plan.validate() == []
        assert set(plan.placements) == set(cells)
        assert plan.width > 0 and plan.height > 0
        assert 0 < plan.utilisation <= 1.0

    def test_deterministic_given_seed(self, workload):
        __, netlist, shape_functions, interface = workload
        plan_a = ChipPlanner(iterations=2, seed=9).plan(
            "cud", netlist, shape_functions, interface)
        plan_b = ChipPlanner(iterations=2, seed=9).plan(
            "cud", netlist, shape_functions, interface)
        assert plan_a.to_dict() == plan_b.to_dict()

    def test_more_iterations_never_worse(self, workload):
        __, netlist, shape_functions, interface = workload
        single = ChipPlanner(iterations=1, seed=4).plan(
            "cud", netlist, shape_functions, interface)
        many = ChipPlanner(iterations=6, seed=4).plan(
            "cud", netlist, shape_functions, interface)
        # the driver keeps the best (overflow, wirelength) plan
        def key(plan):
            overflow = max(0.0, plan.width - interface.max_width) \
                + max(0.0, plan.height - interface.max_height)
            return (overflow, plan.wirelength)
        assert key(many) <= key(single)

    def test_subcell_interfaces_match_placements(self, workload):
        cells, netlist, shape_functions, interface = workload
        plan = ChipPlanner(seed=2).plan("cud", netlist, shape_functions,
                                        interface)
        interfaces = plan.subcell_interfaces()
        assert {i.cell for i in interfaces} == set(cells)
        for sub in interfaces:
            placement = plan.placements[sub.cell]
            assert sub.max_width == placement.width
            assert sub.origin == (placement.x, placement.y)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ChipPlanner(iterations=0)

    def test_fits(self, workload):
        __, netlist, shape_functions, interface = workload
        planner = ChipPlanner(seed=3)
        plan = planner.plan("cud", netlist, shape_functions, interface)
        assert planner.fits(plan, interface) == (
            plan.width <= interface.max_width
            and plan.height <= interface.max_height)


class TestGlobalRoute:
    def test_hpwl_of_two_points(self):
        plan = Floorplan("cud", 10.0, 10.0)
        plan.placements["a"] = Placement("a", 0.0, 0.0, 2.0, 2.0)
        plan.placements["b"] = Placement("b", 8.0, 8.0, 2.0, 2.0)
        netlist = NetList(cells=["a", "b"], nets=[Net("n", ("a", "b"))])
        # centres (1,1) and (9,9): HPWL = 8 + 8
        assert global_route(plan, netlist) == pytest.approx(16.0)

    def test_single_pin_net_free(self):
        plan = Floorplan("cud", 10.0, 10.0)
        plan.placements["a"] = Placement("a", 0.0, 0.0, 2.0, 2.0)
        netlist = NetList(cells=["a", "b"],
                          nets=[Net("n", ("a", "b"))])
        # 'b' unplaced -> only one point -> contributes nothing
        assert global_route(plan, netlist) == 0.0


class TestFloorplanValidation:
    def test_overlap_detected(self):
        plan = Floorplan("cud", 10.0, 10.0)
        plan.placements["a"] = Placement("a", 0.0, 0.0, 5.0, 5.0)
        plan.placements["b"] = Placement("b", 3.0, 3.0, 5.0, 5.0)
        problems = plan.validate()
        assert any("overlaps" in p for p in problems)

    def test_out_of_bounds_detected(self):
        plan = Floorplan("cud", 4.0, 4.0)
        plan.placements["a"] = Placement("a", 2.0, 2.0, 5.0, 5.0)
        assert any("out of bounds" in p for p in plan.validate())

    def test_touching_is_not_overlap(self):
        plan = Floorplan("cud", 10.0, 10.0)
        plan.placements["a"] = Placement("a", 0.0, 0.0, 5.0, 5.0)
        plan.placements["b"] = Placement("b", 5.0, 0.0, 5.0, 5.0)
        assert plan.validate() == []

    def test_dict_roundtrip(self):
        plan = Floorplan("cud", 10.0, 8.0, cut_nets=3, wirelength=12.5)
        plan.placements["a"] = Placement("a", 1.0, 2.0, 3.0, 4.0)
        back = Floorplan.from_dict(plan.to_dict())
        assert back.width == 10.0
        assert back.placements["a"] == Placement("a", 1.0, 2.0, 3.0, 4.0)
        assert back.cut_nets == 3


class TestInterface:
    def test_area_limit(self):
        interface = FloorplanInterface("c", 10.0, 5.0)
        assert interface.area_limit == 50.0

    def test_pin_interval_length(self):
        pin = PinInterval("north", 2.0, 6.0)
        assert pin.length() == 4.0

    def test_dict_roundtrip_with_pins(self):
        interface = FloorplanInterface(
            "c", 10.0, 5.0, origin=(1.0, 2.0),
            pins=(PinInterval("north", 0.0, 2.0, net="clk"),))
        back = FloorplanInterface.from_dict(interface.to_dict())
        assert back.origin == (1.0, 2.0)
        assert back.pins[0].net == "clk"
