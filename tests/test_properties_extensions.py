"""Property-based tests for the extension modules (configurations,
federation, scripted policies)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repository.configurations import ConfigurationManager
from repro.repository.federation import FederatedRepository
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.util.ids import IdGenerator


def build_repo(graphs: int) -> DesignDataRepository:
    repo = DesignDataRepository(IdGenerator())
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("v", AttributeKind.INT, required=False)]))
    for i in range(graphs):
        repo.create_graph(f"da-{i}")
    return repo


# ---------------------------------------------------------------------------
# configurations
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_latest_configuration_always_valid(n_das, versions_per_da, seed):
    repo = build_repo(n_das)
    for i in range(n_das):
        parent = None
        for v in range(versions_per_da):
            parents = (parent,) if parent else ()
            dov = repo.checkin(f"da-{i}", "Cell", {"v": v},
                               parents=parents, created_at=float(v))
            parent = dov.dov_id
    manager = ConfigurationManager(repo, IdGenerator())
    config = manager.latest("tip", {f"slot-{i}": f"da-{i}"
                                    for i in range(n_das)})
    assert config.validate(repo) == []
    assert len(config.bindings) == n_das


@given(st.integers(min_value=1, max_value=4),
       st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                max_size=6))
@settings(max_examples=30, deadline=None)
def test_derivation_chain_lineage_is_ordered(n_das, rebind_slots):
    repo = build_repo(n_das)
    for i in range(n_das):
        repo.checkin(f"da-{i}", "Cell", {"v": 0})
        repo.checkin(f"da-{i}", "Cell", {"v": 1}, created_at=1.0)
    manager = ConfigurationManager(repo, IdGenerator())
    slots = {f"slot-{i}": f"da-{i}" for i in range(n_das)}
    current = manager.latest("v0", slots)
    chain = [current.config_id]
    for step, slot_index in enumerate(rebind_slots):
        slot = f"slot-{slot_index % n_das}"
        current = manager.derive(current.config_id, f"v{step + 1}",
                                 {slot: current.bindings[slot]})
        chain.append(current.config_id)
    lineage = manager.lineage(current.config_id)
    assert [c.config_id for c in lineage] == chain


# ---------------------------------------------------------------------------
# federation
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_federation_directory_complete_and_consistent(n_members,
                                                      n_checkins):
    ids = IdGenerator()
    members = {f"site-{i}": DesignDataRepository(ids)
               for i in range(n_members)}
    federation = FederatedRepository(members)
    federation.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("v", AttributeKind.INT, required=False)]))
    dovs = []
    for i in range(n_checkins):
        da_id = f"da-{i}"
        federation.create_graph(da_id)
        dov = federation.checkin(da_id, "Cell", {"v": i})
        dovs.append((da_id, dov.dov_id))
    for da_id, dov_id in dovs:
        # every committed version is readable through the federation
        assert federation.read(dov_id).created_by == da_id
        # ... and lives exactly on its DA's home member
        home = federation.placement_of(da_id)
        assert dov_id in federation.member(home)
        for name, repo in federation.members().items():
            if name != home:
                assert dov_id not in repo


@given(st.integers(min_value=2, max_value=4),
       st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_federation_survives_member_crashes(n_members, n_checkins):
    ids = IdGenerator()
    members = {f"site-{i}": DesignDataRepository(ids)
               for i in range(n_members)}
    federation = FederatedRepository(members)
    federation.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("v", AttributeKind.INT, required=False)]))
    dovs = []
    for i in range(n_checkins):
        federation.create_graph(f"da-{i}")
        dovs.append(federation.checkin(f"da-{i}", "Cell", {"v": i}))
    for name in list(federation.members()):
        federation.crash_member(name)
        federation.recover_member(name)
    for dov in dovs:
        assert federation.read(dov.dov_id).data == dov.data
