"""Zero-copy hot paths: frozen payloads, cached sizing, determinism.

The acceptance surface of the frozen-payload fast path:

* freezing is **behavior-invariant** — identically seeded T8/T9 runs
  produce byte-identical traffic stats, metrics and event-trace
  labels whether the fast path is on or off (the determinism guard);
* a DOV pays exactly **one** recursive walk over its lifetime (the
  freeze at construction); every later sizing/copy is O(1) — asserted
  through the :func:`repro.repository.versions.payload_walks` hook;
* the downstream short-circuits really engage: WAL appends and stable
  storage share frozen payloads instead of deep-copying, context
  snapshots are copy-on-write, buffer rebind reuses the cached size;
* the scheduler's ``pending`` is an O(1) counter with unchanged
  semantics under cancel/execute/discard interleavings.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict

import pytest

from repro.bench.scenarios import object_buffer_scenario, write_back_scenario
from repro.net.network import StableStorage, _is_immutable
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.repository.versions import (
    DesignObjectVersion,
    FrozenDict,
    FrozenList,
    freeze_payload,
    is_frozen_payload,
    payload_fast_path,
    payload_sizeof,
    payload_walks,
)
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.sim.clock import SimClock
from repro.sim.scheduler import EventScheduler
from repro.te.context import DopContext
from repro.te.object_buffer import ObjectBuffer


def nested_payload() -> dict:
    return {"name": "cell", "meta": {"rev": 1, "tags": ["a", "b"]},
            "tree": {f"n{i}": {"v": i, "s": "x" * 8} for i in range(6)}}


def walks() -> int:
    counts = payload_walks()
    return counts["sizeof"] + counts["freeze"]


class TestFrozenContainers:
    def test_freeze_types_and_equality(self):
        raw = {"a": [1, {"b": 2}], "s": {3, 4}, "t": (5, [6]),
               "by": bytearray(b"xy"), "n": None}
        frozen = freeze_payload(raw)
        assert type(frozen) is FrozenDict
        assert isinstance(frozen, dict)
        assert type(frozen["a"]) is FrozenList
        assert isinstance(frozen["a"], list)
        assert type(frozen["a"][1]) is FrozenDict
        assert type(frozen["s"]) is frozenset
        assert type(frozen["t"]) is tuple
        assert type(frozen["t"][1]) is FrozenList
        assert frozen["by"] == b"xy"
        # equality with the plain originals holds (dict/list subclasses)
        assert frozen["a"] == [1, {"b": 2}]
        assert frozen == {"a": [1, {"b": 2}], "s": frozenset({3, 4}),
                          "t": (5, [6]), "by": b"xy", "n": None}

    def test_frozen_containers_reject_mutation(self):
        frozen = freeze_payload({"a": [1], "b": {"c": 2}})
        for attack in (
            lambda: frozen.__setitem__("x", 1),
            lambda: frozen.pop("a"),
            lambda: frozen.update({"x": 1}),
            lambda: frozen.setdefault("x", 1),
            lambda: frozen.clear(),
            lambda: frozen["a"].append(2),
            lambda: frozen["a"].__setitem__(0, 9),
            lambda: frozen["a"].sort(),
            lambda: frozen["b"].__delitem__("c"),
        ):
            with pytest.raises(TypeError):
                attack()

    def test_deepcopy_returns_the_same_object(self):
        frozen = freeze_payload(nested_payload())
        assert copy.deepcopy(frozen) is frozen
        assert copy.copy(frozen) is frozen
        assert copy.deepcopy(frozen["tree"]) is frozen["tree"]
        # a mutable dict *containing* frozen values copies the shell
        # and shares the frozen members
        shell = {"payload": frozen, "mine": [1]}
        image = copy.deepcopy(shell)
        assert image is not shell
        assert image["payload"] is frozen
        assert image["mine"] is not shell["mine"]

    def test_sizeof_matches_the_unfrozen_walk(self):
        raw = nested_payload()
        frozen = freeze_payload(raw)
        with payload_fast_path(False):
            assert payload_sizeof(frozen) == payload_sizeof(raw)

    def test_json_round_trip(self):
        raw = {"a": [1, 2], "b": {"c": "x"}}
        assert json.loads(json.dumps(freeze_payload(raw))) == raw

    def test_unknown_mutable_objects_are_copied_not_shared(self):
        # out-of-model objects are opaque scalars to the cost model,
        # but they may be mutable — the freeze must copy them so no
        # live reference reaches into a "frozen" payload
        class Blob:
            def __init__(self) -> None:
                self.cells = ["a"]

        blob = Blob()
        frozen = freeze_payload({"blob": blob})
        assert frozen["blob"] is not blob
        blob.cells.append("b")
        assert frozen["blob"].cells == ["a"]
        assert payload_sizeof(frozen) == payload_sizeof({"blob": blob})

    def test_directly_constructed_containers_carry_real_sizes(self):
        # not just the freeze walk: a FrozenDict/FrozenList built by
        # hand must stamp its true modelled size, never a stale zero
        by_hand = FrozenDict({"a": "xxxx", "b": 1})
        assert payload_sizeof(by_hand) == payload_sizeof(
            {"a": "xxxx", "b": 1})
        as_list = FrozenList([1, "xy"])
        assert payload_sizeof(as_list) == payload_sizeof([1, "xy"])
        assert payload_sizeof(FrozenDict()) == 0

    def test_checked_out_vlsi_structure_survives_repartitioning(self):
        # tools must be copy-on-write over checked-out (frozen) state
        from repro.vlsi.tools import repartitioning, structure_synthesis

        producer = DopContext(data={"cell": "cud", "behavior": {
            "operations": ["alu", "mul", "io"]}})
        structure_synthesis(producer, {"seed": 1})
        dov = DesignObjectVersion("dov-1", "Cell", dict(producer.data),
                                  "da-1", 0.0)
        consumer = DopContext()
        consumer.data.update(dov.copy_data())  # the checkout install
        repartitioning(consumer, {"groups": 2})
        partitions = consumer.data["structure"]["partitions"]
        assert sorted(sum(partitions, [])) \
            == sorted(dov.data["structure"]["subcells"])
        assert "partitions" not in dov.data["structure"]  # untouched

    def test_schema_validation_accepts_frozen_payloads(self):
        dot = DesignObjectType("Cell", attributes=[
            AttributeDef("name", AttributeKind.STRING),
            AttributeDef("tree", AttributeKind.JSON),
        ])
        frozen = freeze_payload({"name": "c", "tree": {"kids": [1, 2]}})
        assert dot.validate(frozen) == []


class TestOneWalkPerDov:
    def test_freeze_walk_happens_once(self):
        before = walks()
        dov = DesignObjectVersion("dov-1", "Cell", nested_payload(),
                                  "da-1", 0.0)
        assert walks() == before + 1  # the construction freeze
        for _ in range(5):
            assert dov.payload_size == dov.payload_size
        assert dov.copy_data() is dov.data
        assert payload_sizeof(dov.data) == dov.payload_size
        assert walks() == before + 1  # ... and nothing since

    def test_compat_path_recomputes_like_the_seed(self):
        with payload_fast_path(False):
            dov = DesignObjectVersion("dov-1", "Cell", nested_payload(),
                                      "da-1", 0.0)
            before = walks()
            dov.payload_size
            dov.payload_size
            assert walks() == before + 2  # one full walk per access

    def test_buffer_admission_reuses_the_cached_size(self):
        dov = DesignObjectVersion("dov-1", "Cell", nested_payload(),
                                  "da-1", 0.0)
        buffer = ObjectBuffer("ws-1")
        before = walks()
        entry = buffer.put(dov, "da-1")
        assert entry.size == dov.payload_size
        assert walks() == before

    def test_rebind_keeps_the_resident_size_without_a_walk(self):
        provisional = DesignObjectVersion("wb-1", "Cell",
                                          nested_payload(), "da-1", 0.0)
        buffer = ObjectBuffer("ws-1")
        buffer.put_dirty(provisional, "da-1",
                         {"provisional_id": "wb-1", "da_id": "da-1",
                          "dot_name": "Cell", "data": provisional.data,
                          "parents": [], "dop_id": "dop-1"})
        # the server adopts the shipped frozen payload, so the durable
        # version *shares* it — rebind must not re-size anything
        durable = DesignObjectVersion("dov-9", "Cell", provisional.data,
                                      "da-1", 1.0)
        size_before = buffer.entry("wb-1").size
        before = walks()
        assert buffer.rebind({"wb-1": durable}) == 1
        entry = buffer.entry("dov-9")
        assert entry.size == size_before
        assert not entry.dirty
        assert walks() == before


class TestStorageShortCircuits:
    def test_wal_append_shares_frozen_payload_values(self):
        wal = WriteAheadLog()
        frozen = freeze_payload(nested_payload())
        payload = {"dov_id": "d1", "data": frozen, "parents": ["p1"]}
        record = wal.append(LogRecordKind.DOV_CHECKIN, payload)
        assert record.payload["data"] is frozen
        assert wal.copies_saved == 1
        # mutable values still get the defensive deep copy: a caller
        # mutating its request after the append cannot rewrite history
        payload["parents"].append("p2")
        assert record.payload["parents"] == ["p1"]

    def test_stable_storage_marker_short_circuit(self):
        frozen = freeze_payload(nested_payload())
        assert _is_immutable(frozen)
        store = StableStorage()
        store.put("k", frozen)
        assert store.get("k") is frozen
        assert store.copies_saved == 2  # put + get both skipped

    def test_recovered_dov_shares_the_logged_frozen_payload(self):
        repository = DesignDataRepository()
        repository.register_dot(DesignObjectType("Cell", attributes=[
            AttributeDef("name", AttributeKind.STRING),
            AttributeDef("meta", AttributeKind.JSON),
            AttributeDef("tree", AttributeKind.JSON),
        ]))
        repository.create_graph("da-1")
        dov = repository.checkin("da-1", "Cell", nested_payload(), ())
        frozen = dov.data
        repository.crash()
        before = walks()
        repository.recover()
        assert repository.read(dov.dov_id).data is frozen
        assert walks() == before  # redo adopted, never re-walked


class TestContextCopyOnWrite:
    def test_snapshot_shares_frozen_and_copies_mutable(self):
        dov = DesignObjectVersion("dov-1", "Cell", nested_payload(),
                                  "da-1", 0.0)
        context = DopContext()
        context.data.update(dov.copy_data())
        context.data["scratch"] = {"mine": [1]}
        snap = context.snapshot()
        assert snap["data"]["tree"] is context.data["tree"]
        assert snap["data"]["scratch"] is not context.data["scratch"]
        context.data["scratch"]["mine"].append(2)
        assert snap["data"]["scratch"] == {"mine": [1]}
        rebuilt = DopContext.from_snapshot(snap)
        assert rebuilt.data["tree"] is context.data["tree"]


class TestSchedulerPendingCounter:
    def test_pending_tracks_schedule_and_run(self):
        scheduler = EventScheduler(SimClock())
        events = [scheduler.at(float(i), lambda: None, label=f"e{i}")
                  for i in range(5)]
        assert scheduler.pending == 5
        scheduler.step()
        assert scheduler.pending == 4
        scheduler.cancel(events[2])
        assert scheduler.pending == 3
        # double cancel is idempotent
        scheduler.cancel(events[2])
        assert scheduler.pending == 3
        # cancelling an already-executed event is a no-op
        scheduler.cancel(events[0])
        assert scheduler.pending == 3
        scheduler.run()
        assert scheduler.pending == 0
        assert scheduler.executed == 4  # the cancelled one never ran

    def test_cancelled_head_discarded_by_run(self):
        scheduler = EventScheduler(SimClock())
        head = scheduler.at(0.0, lambda: None)
        scheduler.at(1.0, lambda: None)
        scheduler.cancel(head)
        assert scheduler.pending == 1
        assert scheduler.run() == 1
        assert scheduler.pending == 0

    def test_cancel_after_run_keeps_counter_sane(self):
        scheduler = EventScheduler(SimClock())
        event = scheduler.at(0.0, lambda: None)
        scheduler.run()
        scheduler.cancel(event)
        follow_up = scheduler.at(1.0, lambda: None)
        assert scheduler.pending == 1
        scheduler.cancel(follow_up)
        assert scheduler.pending == 0


class TestDeterminismGuard:
    """Frozen runs must be metric- and trace-identical to the seed path."""

    def test_t8_scenario_is_invariant(self):
        with payload_fast_path(False):
            reference = asdict(object_buffer_scenario(seed=11))
        frozen = asdict(object_buffer_scenario(seed=11))
        assert frozen == reference  # traffic stats, hits, signature, all

    def test_t8_uncached_scenario_is_invariant(self):
        with payload_fast_path(False):
            reference = asdict(object_buffer_scenario(seed=11,
                                                      caching=False))
        frozen = asdict(object_buffer_scenario(seed=11, caching=False))
        assert frozen == reference

    def test_t9_scenario_is_invariant(self):
        with payload_fast_path(False):
            reference = asdict(write_back_scenario(seed=13,
                                                   write_back=True))
        frozen = asdict(write_back_scenario(seed=13, write_back=True))
        assert frozen == reference
        # the restart episode ran, so re-validation was exercised too
        assert frozen["revalidated"] > 0

    def test_t9_write_through_scenario_is_invariant(self):
        with payload_fast_path(False):
            reference = asdict(write_back_scenario(seed=13,
                                                   write_back=False))
        frozen = asdict(write_back_scenario(seed=13, write_back=False))
        assert frozen == reference

    def test_scorecard_rows_are_invariant(self):
        from repro.bench.scorecard import run_scorecard

        with payload_fast_path(False):
            reference = run_scorecard(only={"T8", "T9"})
        frozen = run_scorecard(only={"T8", "T9"})
        assert frozen.rows == reference.rows
        assert frozen.data["failures"] == 0


def test_frozen_payload_marker_is_structural():
    assert is_frozen_payload(freeze_payload({"a": 1}))
    assert is_frozen_payload(freeze_payload([1, 2]))
    assert not is_frozen_payload({"a": 1})
    assert not is_frozen_payload([1, 2])
    assert not is_frozen_payload("scalar")
