"""Cross-workstation group commit: several dirty sets, one decision.

PR-5 acceptance surface of :func:`repro.txn.flush_group`: the dirty
sets of several client-TMs ship under ONE coordinator, ONE 2PC
decision and ONE forced repository WAL write; every contributor posts
its own sized batch message (byte accounting per workstation is
preserved), leases land at the contributing workstation, and the
combined batch is all-or-nothing — one bad record aborts everyone.
Also covers the capacity-pressure partial flush (oldest dirty prefix).
"""

from __future__ import annotations

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.sim.clock import SimClock
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.txn import flush_group
from repro.util.ids import IdGenerator


def make_rig(team: int = 3, capacity: int | None = None,
             pressure_fraction: float = 1.0):
    clock = SimClock()
    network = Network(clock, bandwidth=1000.0)
    network.add_server()
    rpc = TransactionalRpc(network)
    ids = IdGenerator()
    repo = DesignDataRepository(ids)
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)]))
    locks = LockManager()
    server_tm = ServerTM(repo, locks, network, clock=clock)
    server_tm.scope_check = lambda da_id, dov_id: True
    register_server_endpoints(rpc, server_tm)
    clients = []
    for index in range(team):
        workstation = f"ws-{index}"
        network.add_workstation(workstation)
        repo.create_graph(f"da-{index}")
        buffer = ObjectBuffer(workstation, capacity_bytes=capacity,
                              policy="lru")
        clients.append(ClientTM(
            workstation, server_tm, rpc, clock, ids, buffer=buffer,
            write_back=True, flush_on_end_dop=False,
            pressure_fraction=pressure_fraction))
    return {"clock": clock, "network": network, "repo": repo,
            "server_tm": server_tm, "clients": clients}


def stage_checkins(rig, per_client: int = 2, area: float = 10.0):
    dops = []
    for index, client in enumerate(rig["clients"]):
        dop = client.begin_dop(f"da-{index}", tool="t")
        for step in range(per_client):
            client.checkin(dop, "Cell",
                           data={"area": area + index + step},
                           parents=[])
        dops.append(dop)
    return dops


class TestCrossWorkstationGroupCommit:
    def test_one_decision_one_wal_force_for_all_contributors(self):
        rig = make_rig(team=3)
        dops = stage_checkins(rig, per_client=2)
        forced_before = rig["repo"].wal.forced_writes
        report = flush_group(rig["clients"])
        assert report.success
        assert report.count == 6
        assert report.workstations == ["ws-0", "ws-1", "ws-2"]
        # the whole cross-workstation batch rode ONE forced WAL write
        assert rig["repo"].wal.forced_writes == forced_before + 1
        assert rig["server_tm"].group_checkins == 1
        # every provisional id resolved and became durable
        for dop, client in zip(dops, rig["clients"]):
            durable = client.resolve(dop.output_dov)
            assert durable in rig["repo"]
        for client in rig["clients"]:
            assert client.buffer.dirty_count == 0
            assert client.flushes == 1

    def test_bytes_and_batches_attributed_per_workstation(self):
        rig = make_rig(team=2)
        stage_checkins(rig, per_client=2)
        network = rig["network"]
        network.reset_counters()
        report = flush_group(rig["clients"])
        assert report.success
        stats = network.traffic_stats()
        # one sized batch message per contributor
        assert stats["batches_sent"] == 2
        assert stats["batched_payloads"] == 4
        assert stats["bytes_sent_by"]["ws-0"] > 0
        assert stats["bytes_sent_by"]["ws-1"] > 0
        assert report.bytes_shipped \
            == stats["bytes_sent_by"]["ws-0"] \
            + stats["bytes_sent_by"]["ws-1"]

    def test_leases_go_to_the_contributor_not_the_coordinator(self):
        rig = make_rig(team=2)
        dops = stage_checkins(rig, per_client=1)
        report = flush_group(rig["clients"])
        assert report.success
        server_tm = rig["server_tm"]
        for index, (dop, client) in enumerate(zip(dops,
                                                  rig["clients"])):
            durable = client.resolve(dop.output_dov)
            assert server_tm.lease_holders(durable) == {f"ws-{index}"}
            # the durable version stayed resident at its contributor
            assert durable in client.buffer

    def test_cross_batch_is_all_or_nothing(self):
        """One client's integrity-violating record aborts everyone."""
        rig = make_rig(team=2)
        good, bad = rig["clients"]
        dop_good = good.begin_dop("da-0", tool="t")
        good.checkin(dop_good, "Cell", data={"area": 1.0}, parents=[])
        dop_bad = bad.begin_dop("da-1", tool="t")
        bad.checkin(dop_bad, "Cell", data={"area": "not-a-float"},
                    parents=[])
        forced_before = rig["repo"].wal.forced_writes
        report = flush_group(rig["clients"])
        assert not report.success
        assert "area" in report.reason
        # nothing became durable anywhere, nothing was forced
        assert rig["repo"].stats()["durable_versions"] == 0
        assert rig["repo"].wal.forced_writes == forced_before
        # both dirty sets survive intact for a later retry
        assert good.buffer.dirty_count == 1
        assert bad.buffer.dirty_count == 1
        assert good.flushes == 0 and bad.flushes == 0

    def test_clients_without_dirty_data_do_not_contribute(self):
        rig = make_rig(team=3)
        busy = rig["clients"][0]
        dop = busy.begin_dop("da-0", tool="t")
        busy.checkin(dop, "Cell", data={"area": 2.0}, parents=[])
        report = flush_group(rig["clients"])
        assert report.success
        assert report.workstations == ["ws-0"]
        assert report.count == 1

    def test_empty_flush_group_is_a_trivial_success(self):
        rig = make_rig(team=2)
        report = flush_group(rig["clients"])
        assert report.success and report.count == 0
        assert rig["server_tm"].group_checkins == 0

    def test_unflushed_lineage_resolves_across_the_cross_batch(self):
        """A second cross flush whose parents are first-flush durable
        ids commits cleanly — the mapping threads through."""
        rig = make_rig(team=2)
        client = rig["clients"][0]
        dop = client.begin_dop("da-0", tool="t")
        first = client.checkin(dop, "Cell", data={"area": 1.0},
                               parents=[])
        assert flush_group(rig["clients"]).success
        durable_first = client.resolve(first.dov.dov_id)
        second = client.checkin(dop, "Cell", data={"area": 2.0},
                                parents=[durable_first])
        assert flush_group(rig["clients"]).success
        durable_second = client.resolve(second.dov.dov_id)
        dov = rig["repo"].read(durable_second)
        assert dov.parents == (durable_first,)


class TestCapacityPressurePrefixFlush:
    def test_pressure_ships_only_the_oldest_prefix(self):
        rig = make_rig(team=1, capacity=10_000,
                       pressure_fraction=0.5)
        client = rig["clients"][0]
        dop = client.begin_dop("da-0", tool="t")
        # independent lineages so nothing coalesces; each entry is
        # ~16 modelled bytes, so four fit comfortably
        provisionals = []
        for step in range(4):
            result = client.checkin(dop, "Cell",
                                    data={"area": float(step)},
                                    parents=[])
            provisionals.append(result.dov.dov_id)
        assert client.buffer.dirty_count == 4
        # shrink the capacity below the resident bytes and trigger
        # pressure with one more checkin
        client.buffer.capacity_bytes = client.buffer.resident_bytes
        result = client.checkin(dop, "Cell", data={"area": 99.0},
                                parents=[])
        provisionals.append(result.dov.dov_id)
        # the pressure flush shipped ceil(0.5 * 5) = 3 oldest entries
        assert client.flushes == 1
        assert client.flushed_checkins == 3
        for provisional in provisionals[:3]:
            assert client.resolve(provisional) in rig["repo"]
        # the youngest two stayed dirty (still coalescible)
        assert client.buffer.dirty_count == 2
        for provisional in provisionals[3:]:
            assert client.resolve(provisional) not in rig["repo"]

    def test_partial_flush_rewrites_remaining_lineage(self):
        """A dirty chain split by a partial flush keeps a consistent
        lineage: the remainder's parents become the durable ids."""
        rig = make_rig(team=1)
        client = rig["clients"][0]
        dop = client.begin_dop("da-0", tool="t")
        first = client.checkin(dop, "Cell", data={"area": 1.0},
                               parents=[])
        dop2 = client.begin_dop("da-0", tool="t")
        second = client.checkin(dop2, "Cell", data={"area": 2.0},
                                parents=[])
        # explicit prefix flush of just the first entry
        flushed = client.flush(limit=1)
        assert flushed.success and flushed.count == 1
        assert client.buffer.dirty_count == 1
        # now chain a third checkin onto the *flushed* first: its
        # provisional parent already resolves to a durable id
        durable_first = client.resolve(first.dov.dov_id)
        third = client.checkin(dop2, "Cell", data={"area": 3.0},
                               parents=[durable_first])
        assert client.flush().success
        assert rig["repo"].read(
            client.resolve(third.dov.dov_id)).parents \
            == (durable_first,)
        assert client.resolve(second.dov.dov_id) in rig["repo"]
