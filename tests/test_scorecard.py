"""The reproduction scorecard: every expected shape must hold."""

from __future__ import annotations

from repro.bench.scorecard import SCORECARD, run_scorecard


def test_every_driver_has_a_check():
    assert set(SCORECARD) == {
        "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
        "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10",
        "T11",
        "A1", "A2", "A3",
    }


def test_fast_subset_passes():
    """The cheap drivers, checked on every test run."""
    card = run_scorecard(only={"F2", "F6", "F7", "T2", "T3", "A2",
                               "A3"})
    assert card.data["failures"] == 0, card.render()


def test_full_scorecard_passes():
    """Everything — the one-assert reproduction statement."""
    card = run_scorecard()
    assert card.data["failures"] == 0, card.render()
    assert len(card.rows) == 22
