"""Unit tests for DOT schemas: attributes, part-of, constraints."""

from __future__ import annotations

import pytest

from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    Constraint,
    DesignObjectType,
    range_constraint,
)
from repro.util.errors import SchemaError


class TestAttributeKind:
    @pytest.mark.parametrize("kind,good,bad", [
        (AttributeKind.INT, 5, "x"),
        (AttributeKind.INT, -3, 1.5),
        (AttributeKind.FLOAT, 1.5, "x"),
        (AttributeKind.FLOAT, 2, None),
        (AttributeKind.STRING, "hi", 5),
        (AttributeKind.BOOL, True, 1),
    ])
    def test_accepts(self, kind, good, bad):
        assert kind.accepts(good)
        assert not kind.accepts(bad)

    def test_bool_is_not_int(self):
        assert not AttributeKind.INT.accepts(True)
        assert not AttributeKind.FLOAT.accepts(False)

    def test_json_accepts_nested(self):
        assert AttributeKind.JSON.accepts({"a": [1, {"b": None}]})


class TestAttributeDef:
    def test_required_missing_raises(self):
        attr = AttributeDef("area", AttributeKind.FLOAT)
        with pytest.raises(SchemaError):
            attr.validate(None)

    def test_optional_missing_ok(self):
        AttributeDef("area", AttributeKind.FLOAT,
                     required=False).validate(None)

    def test_wrong_domain_raises(self):
        attr = AttributeDef("area", AttributeKind.FLOAT)
        with pytest.raises(SchemaError):
            attr.validate("big")


class TestDesignObjectType:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            DesignObjectType("")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            DesignObjectType("X", attributes=[
                AttributeDef("a", AttributeKind.INT),
                AttributeDef("a", AttributeKind.INT),
            ])

    def test_validate_collects_problems(self):
        dot = DesignObjectType("X", attributes=[
            AttributeDef("a", AttributeKind.INT),
            AttributeDef("b", AttributeKind.STRING, required=False),
        ])
        problems = dot.validate({"a": "nope", "c": 1})
        assert len(problems) == 2
        assert any("'a'" in p for p in problems)
        assert any("'c'" in p for p in problems)

    def test_validate_ok(self):
        dot = DesignObjectType("X", attributes=[
            AttributeDef("a", AttributeKind.INT)])
        assert dot.validate({"a": 3}) == []

    def test_defaults(self):
        dot = DesignObjectType("X", attributes=[
            AttributeDef("a", AttributeKind.INT, required=False,
                         default=7),
            AttributeDef("b", AttributeKind.INT, required=False),
        ])
        assert dot.defaults() == {"a": 7}


class TestPartOf:
    def _hierarchy(self):
        std = DesignObjectType("Std")
        block = DesignObjectType("Block", parts={"cells": std})
        module = DesignObjectType("Module", parts={"blocks": block})
        chip = DesignObjectType("Chip", parts={"modules": module})
        return chip, module, block, std

    def test_direct_part(self):
        chip, module, __, __std = self._hierarchy()
        assert module.is_part_of(chip)

    def test_transitive_part(self):
        chip, __, __b, std = self._hierarchy()
        assert std.is_part_of(chip)

    def test_reflexive(self):
        chip, *_ = self._hierarchy()
        assert chip.is_part_of(chip)

    def test_not_part_upward(self):
        chip, module, *_ = self._hierarchy()
        assert not chip.is_part_of(module)

    def test_unrelated(self):
        chip, *_ = self._hierarchy()
        other = DesignObjectType("Other")
        assert not other.is_part_of(chip)

    def test_descendants(self):
        chip, *_ = self._hierarchy()
        names = {d.name for d in chip.descendants()}
        assert names == {"Module", "Block", "Std"}

    def test_shared_subtype_counted_once(self):
        std = DesignObjectType("Std")
        a = DesignObjectType("A", parts={"s": std})
        b = DesignObjectType("B", parts={"s": std})
        top = DesignObjectType("Top", parts={"a": a, "b": b})
        assert sum(1 for d in top.descendants() if d.name == "Std") == 1


class TestConstraints:
    def test_range_constraint(self):
        constraint = range_constraint("area", lo=0.0, hi=10.0)
        assert constraint.holds({"area": 5.0})
        assert not constraint.holds({"area": -1.0})
        assert not constraint.holds({"area": 11.0})
        assert constraint.holds({})  # absent attribute passes

    def test_constraint_exception_is_violation(self):
        bad = Constraint("boom", lambda d: 1 / 0)
        assert not bad.holds({})

    def test_dot_reports_constraint_violation(self):
        dot = DesignObjectType("X", attributes=[
            AttributeDef("area", AttributeKind.FLOAT, required=False)],
            constraints=[range_constraint("area", lo=0.0)])
        assert dot.validate({"area": 1.0}) == []
        problems = dot.validate({"area": -5.0})
        assert len(problems) == 1
        assert "range(area)" in problems[0]
