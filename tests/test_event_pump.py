"""Tests for the asynchronous event pump (CM messages -> DM ECA rules)."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.dc.rules import EcaRule, require_propagate_rule
from repro.dc.script import DopStep, Script, Sequence
from repro.vlsi.tools import vlsi_dots

NOOP = Script(Sequence(DopStep("structure_synthesis")), "noop")


@pytest.fixture
def rig():
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", NOOP, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b"]}})
    system.start(top.da_id)
    supplier = system.create_sub_da(top.da_id, dots["Module"],
                                    chip_spec(50, 50), "sue", NOOP,
                                    "ws-2")
    consumer = system.create_sub_da(top.da_id, dots["Module"],
                                    chip_spec(50, 50), "carl", NOOP,
                                    "ws-3")
    system.start(supplier.da_id)
    system.start(consumer.da_id)
    return system, top, supplier, consumer


def module_data(width):
    return {"cell": "m", "level": "module", "width": width,
            "height": width, "area": width * width}


class TestPaperRuleViaPump:
    def test_when_require_if_available_then_propagate(self, rig):
        """The paper's flagship ECA rule, end to end through the pump:
        a Require arrives as an asynchronous event, the rule finds a
        qualifying DOV and propagates it immediately."""
        system, __, supplier, consumer = rig
        # the supplier has a qualifying but NOT yet propagated DOV
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10.0))
        system.cm.evaluate(supplier.da_id, dov.dov_id)
        supplier_dm = system.runtime(supplier.da_id).dm

        def find_qualifying(env):
            wanted = set(env["features"])
            for candidate, quality in supplier.quality.items():
                if quality.covers(wanted):
                    return candidate
            return None

        supplier_dm.rules.register(require_propagate_rule(
            find_qualifying,
            lambda env, dov_id: system.cm.propagate(supplier.da_id,
                                                    dov_id)))

        # nothing propagated yet -> Require cannot be served directly
        delivered = system.cm.require(consumer.da_id, supplier.da_id,
                                      {"width-limit"})
        assert delivered is None

        firings = system.pump_events(supplier.da_id)
        assert firings == 1
        usage = system.cm.usage(consumer.da_id, supplier.da_id)
        assert usage.delivered == [dov.dov_id]
        assert system.cm.in_scope(consumer.da_id, dov.dov_id)

    def test_rule_does_not_fire_without_qualifying_dov(self, rig):
        system, __, supplier, consumer = rig
        supplier_dm = system.runtime(supplier.da_id).dm
        supplier_dm.rules.register(require_propagate_rule(
            lambda env: None,
            lambda env, dov_id: pytest.fail("must not propagate")))
        system.cm.require(consumer.da_id, supplier.da_id,
                          {"width-limit"})
        assert system.pump_events(supplier.da_id) == 0


class TestPumpMechanics:
    def test_pump_consumes_messages(self, rig):
        system, top, supplier, __ = rig
        system.cm.sub_da_impossible_specification(supplier.da_id, "x")
        assert len(system.cm.inbox(top.da_id)) == 1
        system.pump_events(top.da_id)
        assert system.cm.inbox(top.da_id) == []

    def test_pump_all_das(self, rig):
        system, top, supplier, consumer = rig
        hits = []
        for da in (top, supplier, consumer):
            dm = system.runtime(da.da_id).dm
            dm.rules.register(EcaRule(
                f"log-{da.da_id}", "Impossible_Specification",
                lambda env: True,
                lambda env: hits.append(env["da_id"])))
        system.cm.sub_da_impossible_specification(supplier.da_id, "x")
        system.pump_events()
        assert hits == [top.da_id]

    def test_event_env_carries_payload(self, rig):
        system, top, supplier, __ = rig
        captured = {}
        system.runtime(top.da_id).dm.rules.register(EcaRule(
            "capture", "Impossible_Specification",
            lambda env: True,
            lambda env: captured.update(env)))
        system.cm.sub_da_impossible_specification(
            supplier.da_id, "area too small")
        system.pump_events(top.da_id)
        assert captured["reason"] == "area too small"
        assert captured["sender"] == supplier.da_id
        assert captured["da_id"] == top.da_id


class TestFixedPointDrain:
    def test_messages_produced_while_dispatching_are_drained(self, rig):
        """A rule firing that itself sends a message must not strand
        that message until the next manual pump: one call drains to a
        fixed point."""
        system, top, supplier, consumer = rig
        chain = []

        # top's reaction to the impossible-spec report pings the
        # consumer, whose own rule records the arrival
        system.runtime(top.da_id).dm.rules.register(EcaRule(
            "escalate", "Impossible_Specification",
            lambda env: True,
            lambda env: system.cm.modify_sub_da_specification(
                top.da_id, consumer.da_id,
                system.cm.da(consumer.da_id).spec)))
        system.runtime(consumer.da_id).dm.rules.register(EcaRule(
            "observe", "Specification_Modified",
            lambda env: True,
            lambda env: chain.append(env["da_id"])))

        system.cm.sub_da_impossible_specification(supplier.da_id, "x")
        firings = system.pump_events()
        assert chain == [consumer.da_id]
        assert firings == 2
        assert system.cm.inbox(top.da_id) == []
        assert system.cm.inbox(consumer.da_id) == []

    def test_round_guard_bounds_a_message_ping_pong(self, rig):
        """Two rules that keep messaging each other terminate at the
        max_rounds guard instead of looping forever."""
        system, top, supplier, __ = rig

        def ping(env):
            # white-box: re-send the raw message, sidestepping the DA
            # state machine, to build an endless delivery loop
            system.cm._send("impossible_specification", supplier.da_id,
                            top.da_id, reason="again")

        system.runtime(top.da_id).dm.rules.register(EcaRule(
            "ping", "Impossible_Specification", lambda env: True, ping))
        system.cm.sub_da_impossible_specification(supplier.da_id, "x")
        firings = system.pump_events(max_rounds=5)
        assert firings == 5
