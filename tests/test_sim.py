"""Unit tests for repro.sim: clock, scheduler, failure plans."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.failures import FailureKind, FailurePlan
from repro.sim.scheduler import EventScheduler


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_never_goes_back(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(15.0)
        assert clock.now == 15.0

    def test_reset(self):
        clock = SimClock(10.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventScheduler:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.at(3.0, lambda: order.append("c"))
        sched.at(1.0, lambda: order.append("a"))
        sched.at(2.0, lambda: order.append("b"))
        sched.run()
        assert order == ["a", "b", "c"]
        assert sched.clock.now == 3.0

    def test_ties_resolve_by_insertion_order(self):
        sched = EventScheduler()
        order = []
        sched.at(1.0, lambda: order.append(1))
        sched.at(1.0, lambda: order.append(2))
        sched.run()
        assert order == [1, 2]

    def test_priority_breaks_ties(self):
        sched = EventScheduler()
        order = []
        sched.at(1.0, lambda: order.append("low"), priority=1)
        sched.at(1.0, lambda: order.append("high"), priority=0)
        sched.run()
        assert order == ["high", "low"]

    def test_after_schedules_relative(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        seen = []
        sched.after(5.0, lambda: seen.append(sched.clock.now))
        sched.run()
        assert seen == [15.0]

    def test_cannot_schedule_in_past(self):
        sched = EventScheduler()
        sched.clock.advance(5.0)
        with pytest.raises(ValueError):
            sched.at(1.0, lambda: None)

    def test_cancel(self):
        sched = EventScheduler()
        hit = []
        event = sched.at(1.0, lambda: hit.append(1))
        sched.cancel(event)
        sched.run()
        assert hit == []
        assert sched.pending == 0

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        seen = []

        def chain():
            seen.append(sched.clock.now)
            if len(seen) < 3:
                sched.after(1.0, chain)

        sched.at(0.0, chain)
        sched.run()
        assert seen == [0.0, 1.0, 2.0]

    def test_run_until(self):
        sched = EventScheduler()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sched.at(t, lambda t=t: seen.append(t))
        sched.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert sched.clock.now == 2.0
        assert sched.pending == 1

    def test_max_events(self):
        sched = EventScheduler()
        for t in (1.0, 2.0, 3.0):
            sched.at(t, lambda: None)
        ran = sched.run(max_events=2)
        assert ran == 2
        assert sched.executed == 2

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False


class TestFailurePlan:
    def test_chaining(self):
        plan = FailurePlan().crash_workstation("ws-1", at=10.0) \
                            .crash_server("server", at=20.0)
        assert len(plan) == 2

    def test_sorted_events(self):
        plan = FailurePlan()
        plan.crash_server("server", at=20.0)
        plan.crash_workstation("ws-1", at=10.0)
        events = plan.sorted_events()
        assert [e.at for e in events] == [10.0, 20.0]
        assert events[0].kind is FailureKind.WORKSTATION_CRASH

    def test_restart_at(self):
        plan = FailurePlan().crash_server("server", at=5.0,
                                          restart_after=2.5)
        assert plan.events[0].restart_at == 7.5
