"""Property-based tests on the VLSI domain and the workload simulator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.models import all_models
from repro.util.rng import SeededRng
from repro.vlsi.chip_planner import ChipPlanner, bipartition
from repro.vlsi.floorplan import FloorplanInterface
from repro.vlsi.netlist import synthetic_netlist
from repro.vlsi.shapes import shapes_for_area
from repro.workload.generator import team_workload
from repro.workload.simulator import TeamSimulator, crash_lost_work


# ---------------------------------------------------------------------------
# bipartitioning
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=16),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_bipartition_is_a_partition(n_cells, seed):
    cells = [f"c{i}" for i in range(n_cells)]
    netlist = synthetic_netlist(cells, SeededRng(seed))
    areas = {c: 1.0 + (i % 3) for i, c in enumerate(cells)}
    part_a, part_b = bipartition(netlist, areas, SeededRng(seed + 1))
    assert part_a | part_b == set(cells)
    assert part_a & part_b == set()
    assert part_a and part_b


@given(st.integers(min_value=4, max_value=16),
       st.integers(min_value=0, max_value=500))
@settings(max_examples=30, deadline=None)
def test_bipartition_roughly_balanced(n_cells, seed):
    cells = [f"c{i}" for i in range(n_cells)]
    netlist = synthetic_netlist(cells, SeededRng(seed))
    areas = {c: 1.0 for c in cells}
    part_a, part_b = bipartition(netlist, areas, SeededRng(seed))
    total = len(cells)
    assert min(len(part_a), len(part_b)) >= total // 4


# ---------------------------------------------------------------------------
# chip planning geometry
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_floorplans_always_geometrically_valid(n_cells, seed):
    cells = [f"c{i}" for i in range(n_cells)]
    netlist = synthetic_netlist(cells, SeededRng(seed))
    shape_functions = {c: shapes_for_area(c, 2.0 + (i % 5))
                       for i, c in enumerate(cells)}
    planner = ChipPlanner(iterations=2, seed=seed)
    plan = planner.plan("cud", netlist, shape_functions,
                        FloorplanInterface("cud", 1e6, 1e6))
    assert plan.validate() == []
    assert set(plan.placements) == set(cells)
    assert plan.utilisation <= 1.0 + 1e-9
    # the bounding box really bounds the placements
    for placement in plan.placements.values():
        assert placement.x + placement.width <= plan.width + 1e-6
        assert placement.y + placement.height <= plan.height + 1e-6


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_used_area_conserved(n_cells, seed):
    """Sizing picks one alternative per cell: total used area equals
    the sum of the chosen shapes' areas, never less than min areas."""
    cells = [f"c{i}" for i in range(n_cells)]
    netlist = synthetic_netlist(cells, SeededRng(seed))
    shape_functions = {c: shapes_for_area(c, 3.0) for c in cells}
    plan = ChipPlanner(iterations=1, seed=seed).plan(
        "cud", netlist, shape_functions,
        FloorplanInterface("cud", 1e6, 1e6))
    min_total = sum(sf.min_area() for sf in shape_functions.values())
    assert plan.used_area >= min_total - 1e-6


# ---------------------------------------------------------------------------
# team simulator
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_simulator_conserves_work_across_models(team_size, seed):
    workload = team_workload(team_size, seed=seed)
    for model in all_models():
        metrics = TeamSimulator(model, workload).run()
        assert metrics.total_work == workload.total_work \
            or abs(metrics.total_work - workload.total_work) < 1e-6
        # makespan can never beat perfect parallelism or the critical
        # session, and never exceeds work + blocking + rework
        longest_session = max(s.total_work for s in workload.sessions)
        assert metrics.makespan >= longest_session - 1e-6
        assert metrics.makespan <= (workload.total_work
                                    + metrics.total_rework + 1e-6)


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_concord_never_slower_than_flat(team_size, seed):
    workload = team_workload(team_size, seed=seed)
    models = {m.name: m for m in all_models()}
    concord = TeamSimulator(models["concord"], workload).run()
    flat = TeamSimulator(models["flat_acid"], workload).run()
    assert concord.makespan <= flat.makespan + 1e-6


@given(st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=50)
def test_lost_work_never_exceeds_done_work(crash_time, n_steps):
    steps = [40.0 + 7.0 * i for i in range(n_steps)]
    for model in all_models():
        metrics = crash_lost_work(model, steps, crash_time)
        done = min(crash_time, sum(steps))
        # 1e-3 tolerance: lost_work is rounded to 3 decimals
        assert 0.0 <= metrics.lost_work <= done + 1e-3
