"""Unit tests for the simulated LAN: nodes, stable storage, transport."""

from __future__ import annotations

import pytest

from repro.net.network import (
    IMMUTABLE_CHECK_MAX_DEPTH,
    Network,
    NodeKind,
    StableStorage,
    _is_immutable,
)
from repro.util.errors import NetworkError, NodeDownError


class TestStableStorage:
    def test_put_get_roundtrip(self):
        storage = StableStorage()
        storage.put("k", {"a": 1})
        assert storage.get("k") == {"a": 1}

    def test_values_are_isolated_copies(self):
        storage = StableStorage()
        value = {"a": [1]}
        storage.put("k", value)
        value["a"].append(2)
        assert storage.get("k") == {"a": [1]}
        read = storage.get("k")
        read["a"].append(3)
        assert storage.get("k") == {"a": [1]}

    def test_get_default(self):
        assert StableStorage().get("missing", 42) == 42

    def test_delete(self):
        storage = StableStorage()
        storage.put("k", 1)
        assert storage.delete("k") is True
        assert storage.delete("k") is False

    def test_keys_prefix(self):
        storage = StableStorage()
        storage.put("a:1", 1)
        storage.put("a:2", 2)
        storage.put("b:1", 3)
        assert storage.keys("a:") == ["a:1", "a:2"]

    def test_write_counter(self):
        storage = StableStorage()
        storage.put("k", 1)
        storage.put("k", 2)
        assert storage.writes == 2


class TestNode:
    def test_crash_clears_volatile_keeps_stable(self):
        network = Network()
        node = network.add_workstation("ws-1")
        node.volatile["x"] = 1
        node.stable.put("y", 2)
        node.crash()
        assert node.volatile == {}
        assert node.stable.get("y") == 2
        assert not node.up
        node.restart()
        assert node.up

    def test_hooks_fire(self):
        network = Network()
        node = network.add_workstation("ws-1")
        calls = []
        node.on_crash.append(lambda: calls.append("crash"))
        node.on_restart.append(lambda: calls.append("restart"))
        node.crash()
        node.restart()
        assert calls == ["crash", "restart"]
        assert node.crash_count == 1

    def test_require_up(self):
        network = Network()
        node = network.add_workstation("ws-1")
        node.crash()
        with pytest.raises(NodeDownError):
            node.require_up()


class TestNetwork:
    def test_duplicate_node_rejected(self):
        network = Network()
        network.add_server()
        with pytest.raises(NetworkError):
            network.add_node("server", NodeKind.SERVER)

    def test_unknown_node(self):
        with pytest.raises(NetworkError):
            Network().node("nope")

    def test_nodes_by_kind(self):
        network = Network()
        network.add_server()
        network.add_workstation("ws-1")
        network.add_workstation("ws-2")
        assert len(network.nodes(NodeKind.WORKSTATION)) == 2
        assert len(network.nodes()) == 3

    def test_send_counts_messages_and_latency(self):
        network = Network(lan_latency=0.01, local_latency=0.001)
        network.add_server()
        network.add_workstation("ws-1")
        lan = network.send("ws-1", "server")
        local = network.send("server", "server")
        assert lan == 0.01
        assert local == 0.001
        assert network.messages_sent == 2
        assert network.total_latency == pytest.approx(0.011)

    def test_send_to_down_node_fails(self):
        network = Network()
        network.add_server()
        network.add_workstation("ws-1")
        network.crash_node("server")
        with pytest.raises(NodeDownError):
            network.send("ws-1", "server")

    def test_send_from_down_node_fails(self):
        network = Network()
        network.add_server()
        network.add_workstation("ws-1")
        network.crash_node("ws-1")
        with pytest.raises(NodeDownError):
            network.send("ws-1", "server")

    def test_reset_counters(self):
        network = Network()
        network.add_server()
        network.add_workstation("ws-1")
        network.send("ws-1", "server")
        network.reset_counters()
        assert network.messages_sent == 0
        assert network.total_latency == 0.0

    def test_reset_counters_covers_all_stats_and_returns_snapshot(self):
        network = Network(lan_latency=0.01, bandwidth=1000.0)
        network.add_server()
        network.add_workstation("ws-1")
        network.send("ws-1", "server", size=500)
        network.post("server", "ws-1", lambda: None, size=300)
        snapshot = network.reset_counters()
        # the snapshot carries the pre-reset interval ...
        assert snapshot["messages_sent"] == 2
        assert snapshot["messages_delivered"] == 1
        assert snapshot["bytes_shipped"] == 800
        assert snapshot["bytes_sent_by"] == {"ws-1": 500, "server": 300}
        assert snapshot["bytes_received_by"] == {"server": 500,
                                                 "ws-1": 300}
        assert snapshot["total_latency"] == pytest.approx(0.82)
        # ... and every counter — bytes included — is zeroed
        assert network.messages_sent == 0
        assert network.messages_delivered == 0
        assert network.total_latency == 0.0
        assert network.bytes_shipped == 0
        assert network.bytes_sent_by == {}
        assert network.bytes_received_by == {}

    def test_sized_messages_scale_latency_with_payload(self):
        network = Network(lan_latency=0.01, bandwidth=100.0)
        network.add_server()
        network.add_workstation("ws-1")
        control = network.send("server", "ws-1")
        sized = network.send("server", "ws-1", size=50)
        assert control == pytest.approx(0.01)
        assert sized == pytest.approx(0.01 + 50 / 100.0)
        assert network.bytes_shipped == 50


class TestStableStorageCopySkip:
    def test_immutable_scalars_skip_the_copy(self):
        storage = StableStorage()
        storage.put("s", "value")
        storage.put("i", 7)
        storage.put("f", 1.5)
        storage.put("n", None)
        assert storage.copies_saved == 4
        assert storage.get("s") == "value"
        assert storage.copies_saved == 5

    def test_immutable_tuples_skip_the_copy(self):
        storage = StableStorage()
        storage.put("t", (1, "a", (2.0, None)))
        assert storage.copies_saved == 1
        assert storage.get("t") == (1, "a", (2.0, None))
        assert storage.copies_saved == 2

    def test_mutable_payloads_still_copy(self):
        storage = StableStorage()
        storage.put("d", {"a": [1]})
        storage.put("t", (1, [2]))       # tuple holding a list
        assert storage.copies_saved == 0
        read = storage.get("d")
        read["a"].append(9)
        assert storage.get("d") == {"a": [1]}

    def test_writes_counted_either_way(self):
        storage = StableStorage()
        storage.put("a", 1)
        storage.put("b", [1])
        assert storage.writes == 2

    def test_deep_nesting_caps_at_the_depth_constant(self):
        # nesting beyond IMMUTABLE_CHECK_MAX_DEPTH conservatively
        # takes the deep copy (flips to "mutable") — it must never
        # error or leak a live reference
        nested = ("leaf",)
        for _ in range(IMMUTABLE_CHECK_MAX_DEPTH + 6):
            nested = (nested,)
        assert _is_immutable(nested) is False
        storage = StableStorage()
        storage.put("deep", nested)
        assert storage.copies_saved == 0
        assert storage.get("deep") == nested

    def test_nesting_at_the_cap_still_skips_the_copy(self):
        nested = ("leaf",)
        for _ in range(IMMUTABLE_CHECK_MAX_DEPTH - 1):
            nested = (nested,)
        assert _is_immutable(nested) is True
        storage = StableStorage()
        storage.put("shallow", nested)
        assert storage.copies_saved == 1


class TestAsyncDelivery:
    def _rig(self, jitter: float = 0.0, seed: int = 0):
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        network = Network(kernel.clock, jitter=jitter, seed=seed)
        network.attach_kernel(kernel)
        network.add_server()
        network.add_workstation("ws-1")
        return kernel, network

    def test_post_outside_a_run_is_synchronous(self):
        __, network = self._rig()
        delivered = []
        network.post("server", "ws-1", lambda: delivered.append(1))
        assert delivered == [1]

    def test_post_during_a_run_is_queued_with_latency(self):
        kernel, network = self._rig()
        delivered = []
        kernel.at(1.0, lambda: network.post(
            "server", "ws-1",
            lambda: delivered.append(kernel.clock.now)))
        kernel.run_until_quiescent()
        assert delivered == [1.0 + network.lan_latency]
        assert network.messages_delivered == 1

    def test_jitter_is_seeded_and_deterministic(self):
        def run_once(seed):
            kernel, network = self._rig(jitter=0.5, seed=seed)
            arrival = []
            kernel.at(0.0, lambda: network.post(
                "server", "ws-1",
                lambda: arrival.append(kernel.clock.now)))
            kernel.run_until_quiescent()
            return arrival[0]

        assert run_once(3) == run_once(3)
        assert run_once(3) != run_once(4)

    def test_delivery_to_down_node_parks_until_restart(self):
        kernel, network = self._rig()
        delivered = []
        kernel.at(0.0, lambda: network.crash_node("ws-1"))
        kernel.at(1.0, lambda: network.post(
            "server", "ws-1",
            lambda: delivered.append(kernel.clock.now)))
        kernel.at(5.0, lambda: network.restart_node("ws-1"))
        kernel.run_until_quiescent()
        assert delivered == [5.0]
