"""Unit tests for domain DOP-ordering constraints."""

from __future__ import annotations

import pytest

from repro.dc.constraints import DomainConstraintSet, FollowedBy, NotBefore
from repro.dc.script import Alternative, DopStep, Open, Script, Sequence
from repro.util.errors import ConstraintViolationError


@pytest.fixture
def constraints():
    return DomainConstraintSet([
        NotBefore("synthesis", "assembly"),
        FollowedBy("pad_frame", "planner"),
    ], domain="test")


class TestNotBefore:
    def test_prefix_rejects_premature_tool(self, constraints):
        with pytest.raises(ConstraintViolationError):
            constraints.admit([], "assembly")

    def test_prefix_admits_after_prerequisite(self, constraints):
        constraints.admit(["synthesis"], "assembly")

    def test_unrelated_tools_admitted(self, constraints):
        constraints.admit([], "synthesis")
        constraints.admit([], "other")

    def test_complete_check(self):
        constraint = NotBefore("a", "b")
        assert constraint.check_complete(["b", "a"]) is not None
        assert constraint.check_complete(["a", "b"]) is None
        assert constraint.check_complete(["a"]) is None


class TestFollowedBy:
    def test_unfollowed_is_violation(self, constraints):
        problems = constraints.violations(["synthesis", "pad_frame"])
        assert any("followed" in p for p in problems)

    def test_followed_ok(self, constraints):
        assert constraints.violations(
            ["synthesis", "pad_frame", "planner"]) == []

    def test_refollowed_after_second_occurrence(self):
        constraint = FollowedBy("a", "b")
        assert constraint.check_complete(["a", "b", "a"]) is not None
        assert constraint.check_complete(["a", "b", "a", "b"]) is None


class TestHistory:
    def test_history_satisfies_prerequisites(self, constraints):
        assert constraints.violations(["assembly"],
                                      history=["synthesis"]) == []

    def test_without_history_fails(self, constraints):
        assert constraints.violations(["assembly"]) != []


class TestScriptValidation:
    def test_valid_script(self, constraints):
        script = Script(Sequence(DopStep("synthesis"),
                                 DopStep("assembly")))
        assert constraints.validate_script(script) == []

    def test_invalid_path_flagged(self, constraints):
        script = Script(Alternative(
            Sequence(DopStep("synthesis"), DopStep("assembly")),
            DopStep("assembly"),   # illegal path
        ))
        problems = constraints.validate_script(script)
        assert len(problems) >= 1

    def test_open_segment_defers_to_dynamic_checks(self, constraints):
        script = Script(Sequence(DopStep("synthesis"), Open(),
                                 DopStep("assembly")))
        assert constraints.validate_script(script) == []

    def test_violation_before_open_still_caught(self, constraints):
        script = Script(Sequence(DopStep("assembly"), Open()))
        assert constraints.validate_script(script) != []

    def test_require_valid_raises(self, constraints):
        script = Script(DopStep("assembly"))
        with pytest.raises(ConstraintViolationError):
            constraints.require_valid(script)

    def test_require_valid_with_history(self, constraints):
        script = Script(DopStep("assembly"))
        constraints.require_valid(script, history=["synthesis"])

    def test_empty_constraint_set_accepts_all(self):
        empty = DomainConstraintSet()
        empty.admit([], "anything")
        assert empty.violations(["x", "y"]) == []
        assert len(empty) == 0

    def test_add_chains(self):
        constraint_set = DomainConstraintSet().add(NotBefore("a", "b"))
        assert len(constraint_set) == 1
