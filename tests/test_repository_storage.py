"""Unit tests for the WAL and the version store crash semantics."""

from __future__ import annotations

import pytest

from repro.repository.storage import VersionStore
from repro.repository.versions import DesignObjectVersion
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.util.errors import StorageError, UnknownObjectError


def dov(dov_id: str) -> DesignObjectVersion:
    return DesignObjectVersion(dov_id, "Cell", {"area": 1.0}, "da-1", 0.0)


class TestWriteAheadLog:
    def test_lsn_monotone(self):
        wal = WriteAheadLog()
        first = wal.append(LogRecordKind.CHECKPOINT)
        second = wal.append(LogRecordKind.CHECKPOINT)
        assert second.lsn == first.lsn + 1

    def test_crash_loses_unforced_tail(self):
        wal = WriteAheadLog()
        wal.append(LogRecordKind.DOV_CHECKIN, {"dov_id": "a"}, force=True)
        wal.append(LogRecordKind.DOV_CHECKIN, {"dov_id": "b"})
        lost = wal.crash()
        assert lost == 1
        ids = [r.payload["dov_id"]
               for r in wal.stable_records(LogRecordKind.DOV_CHECKIN)]
        assert ids == ["a"]

    def test_force_flushes_everything_pending(self):
        wal = WriteAheadLog()
        wal.append(LogRecordKind.CHECKPOINT)
        wal.append(LogRecordKind.CHECKPOINT)
        assert wal.force() == 2
        assert wal.crash() == 0

    def test_forced_writes_counted(self):
        wal = WriteAheadLog()
        wal.append(LogRecordKind.CHECKPOINT, force=True)
        wal.append(LogRecordKind.CHECKPOINT, force=True)
        wal.force()  # nothing pending: not counted
        assert wal.forced_writes == 2

    def test_payload_is_deep_copied(self):
        wal = WriteAheadLog()
        payload = {"nested": [1]}
        wal.append(LogRecordKind.CHECKPOINT, payload, force=True)
        payload["nested"].append(2)
        assert wal.stable_records()[0].payload["nested"] == [1]

    def test_stable_lsn(self):
        wal = WriteAheadLog()
        assert wal.stable_lsn == 0
        wal.append(LogRecordKind.CHECKPOINT, force=True)
        wal.append(LogRecordKind.CHECKPOINT)
        assert wal.stable_lsn == 1

    def test_truncate(self):
        wal = WriteAheadLog()
        for _ in range(5):
            wal.append(LogRecordKind.CHECKPOINT, force=True)
        assert wal.truncate(up_to_lsn=3) == 3
        assert [r.lsn for r in wal.stable_records()] == [4, 5]

    def test_filter_by_kind(self):
        wal = WriteAheadLog()
        wal.append(LogRecordKind.DOP_START, force=True)
        wal.append(LogRecordKind.DOP_FINISH, force=True)
        assert len(wal.stable_records(LogRecordKind.DOP_START)) == 1


class TestVersionStore:
    def test_stage_commit_read(self):
        store = VersionStore()
        store.stage(dov("v1"))
        assert "v1" not in store          # staged is invisible
        store.commit("v1")
        assert store.get("v1").dov_id == "v1"

    def test_duplicate_stage_rejected(self):
        store = VersionStore()
        store.put_durable(dov("v1"))
        with pytest.raises(StorageError):
            store.stage(dov("v1"))

    def test_commit_unstaged_rejected(self):
        with pytest.raises(StorageError):
            VersionStore().commit("vx")

    def test_discard(self):
        store = VersionStore()
        store.stage(dov("v1"))
        assert store.discard("v1") is True
        assert store.discard("v1") is False
        assert store.staged_ids() == set()

    def test_crash_loses_staged_keeps_committed(self):
        store = VersionStore()
        store.put_durable(dov("v1"))
        store.stage(dov("v2"))
        report = store.crash()
        assert report["staged_lost"] == 1
        assert not store.is_up
        recovered = store.recover()
        assert recovered == 1
        assert "v1" in store
        assert "v2" not in store

    def test_down_store_refuses_access(self):
        store = VersionStore()
        store.put_durable(dov("v1"))
        store.crash()
        with pytest.raises(StorageError):
            store.get("v1")
        with pytest.raises(StorageError):
            store.stage(dov("v2"))

    def test_recover_is_idempotent(self):
        store = VersionStore()
        store.put_durable(dov("v1"))
        store.crash()
        store.recover()
        assert store.recover() == 0
        assert len(store) == 1

    def test_unknown_read_raises(self):
        with pytest.raises(UnknownObjectError):
            VersionStore().get("nope")

    def test_recovered_version_roundtrips_fields(self):
        store = VersionStore()
        original = DesignObjectVersion("v9", "Cell", {"a": [1, 2]},
                                       "da-3", 42.0, ("p1", "p2"))
        store.put_durable(original)
        store.crash()
        store.recover()
        back = store.get("v9")
        assert back.created_by == "da-3"
        assert back.created_at == 42.0
        assert back.parents == ("p1", "p2")
        assert back.data == {"a": [1, 2]}
