"""Concurrent multi-DA execution on the unified kernel.

These tests exercise the acceptance surface of the kernel refactor:
three or more DAs with genuinely interleaved tool steps on one shared
clock, CM messages auto-delivered to the DM rule engines (no manual
``pump_events``), kernel-injected crashes mid-step, and equivalence of
the concurrent and sequential execution paths.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import (
    chip_spec,
    concurrent_delegation_scenario,
    make_vlsi_system,
    object_buffer_scenario,
)
from repro.core.states import DaState
from repro.dc.rules import EcaRule
from repro.dc.script import DaOpStep, DopStep, Script, Sequence
from repro.vlsi.tools import vlsi_dots


def refine(context, params):
    """Test tool: needs no inputs, halves the width each application."""
    context.data.setdefault("cell", params.get("cell", "c"))
    context.data.setdefault("level", "module")
    context.data["width"] = context.data.get("width", 64.0) / 2.0
    context.data["height"] = context.data["width"]
    context.data["area"] = context.data["width"] ** 2


def worker_script(name: str, steps: int, duration: float) -> Script:
    """*steps* refine DOPs of *duration* minutes each."""
    return Script(Sequence(*[
        DopStep("refine", duration=duration)
        for _ in range(steps)]), name=name)


@pytest.fixture
def trio():
    """Top-level DA with three started sub-DAs on distinct stations."""
    system = make_vlsi_system(("ws-0", "ws-1", "ws-2", "ws-3"))
    system.tools.register("refine", refine, duration=10.0)
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(500, 500), "lead",
        worker_script("top", 1, 5.0), "ws-0",
        initial_data={"cell": "c", "level": "chip",
                      "behavior": {"operations": ["a", "b"]}})
    system.start(top.da_id)
    system.run(top.da_id)
    subs = []
    durations = (30.0, 20.0, 50.0)
    for index, duration in enumerate(durations):
        sub = system.create_sub_da(
            top.da_id, dots["Module"], chip_spec(500, 500),
            f"designer-{index}",
            worker_script(f"sub-{index}", 3, duration),
            f"ws-{index + 1}")
        system.start(sub.da_id)
        subs.append(sub.da_id)
    return system, top, subs


class TestInterleaving:
    def test_three_das_interleave_on_shared_clock(self, trio):
        system, __, subs = trio
        start = system.clock.now
        statuses = system.run_concurrent(subs)
        assert all(s.done for s in statuses.values())
        assert all(s.executed_dops == 3 for s in statuses.values())
        # concurrent makespan = the slowest DA (3 x 50), not the sum
        makespan = system.clock.now - start
        assert makespan == pytest.approx(150.0, abs=1.0)

    def test_event_trace_shows_interleaved_finishes(self, trio):
        system, __, subs = trio
        system.run_concurrent(subs)
        finishes = [label for *__, label in system.kernel.event_log
                    if label.startswith("dop-finish:")]
        owners = [label.split(":")[1] for label in finishes]
        # the finish stream switches DA more often than a serialised
        # per-DA grouping possibly could
        switches = sum(1 for a, b in zip(owners, owners[1:]) if a != b)
        assert switches > len(subs) - 1

class TestAutoDelivery:
    def test_ready_to_commit_auto_dispatched(self):
        """The full delegation round trip with no manual pump."""
        __, report = concurrent_delegation_scenario(("A", "B", "C"))
        assert all(state == "terminated"
                   for da, state in report.final_states.items()
                   if da != report.top_da)
        assert len(report.devolved) == 3
        assert all(report.devolved.values())

    def test_concurrent_matches_sequential_path(self):
        sys_c, rep_c = concurrent_delegation_scenario(("A", "B"))
        sys_s, rep_s = concurrent_delegation_scenario(("A", "B"),
                                                      concurrent=False)
        assert rep_c.final_states == rep_s.final_states
        for cell in ("A", "B"):
            leaves_c = sorted(
                round(d.data.get("width", 0.0), 3) for d in
                sys_c.repository.graph(rep_c.sub_das[cell]).leaves())
            leaves_s = sorted(
                round(d.data.get("width", 0.0), 3) for d in
                sys_s.repository.graph(rep_s.sub_das[cell]).leaves())
            assert leaves_c == leaves_s

    def test_interleaving_beats_sequential_makespan(self):
        __, rep_c = concurrent_delegation_scenario(("A", "B", "C"))
        __, rep_s = concurrent_delegation_scenario(("A", "B", "C"),
                                                   concurrent=False)
        assert rep_c.makespan < rep_s.makespan / 2


class TestNegotiationWhileWorking:
    def test_siblings_negotiate_while_third_works(self, trio):
        system, top, subs = trio
        da_a, da_b, da_c = subs
        proposals = []

        # B agrees to whatever A proposes, as the message arrives
        system.runtime(da_b).dm.rules.register(EcaRule(
            "auto-agree", "Propose",
            lambda env: True,
            lambda env: (proposals.append(env["proposal"]),
                         system.cm.agree(da_b, env["proposal"]))))

        # A opens the negotiation mid-run, while C is inside a DOP
        system.kernel.after(
            25.0, lambda: system.cm.propose(da_a, da_b, changes={},
                                            note="border"),
            label="designer:propose")

        statuses = system.run_concurrent(subs)
        assert proposals, "the proposal never reached B's rule engine"
        assert system.cm.da(da_a).state is DaState.ACTIVE
        assert system.cm.da(da_b).state is DaState.ACTIVE
        # the worker under delegation was never disturbed
        assert statuses[da_c].done
        assert statuses[da_c].executed_dops == 3
        # A and B resumed and finished their own work flows too
        assert statuses[da_a].done and statuses[da_b].done


class TestKernelCrashRecovery:
    def test_workstation_crash_mid_step_recovers(self):
        system, report = concurrent_delegation_scenario(
            ("A", "B", "C"), crash=("ws-B", 15.0, 5.0))
        # the crash interrupted an in-flight DOP; forward recovery
        # resumed it (report captured by the kernel restart path)
        b_id = report.sub_das["B"]
        assert b_id in system.last_recovery_reports
        resumed = system.last_recovery_reports[b_id]["in_flight_resumed"]
        assert resumed is not None
        assert [(e.action, e.node) for e in system.kernel.injections] \
            == [("crash", "ws-B"), ("restart", "ws-B")]
        # ... and the scenario still converged fully
        assert all(state == "terminated"
                   for da, state in report.final_states.items()
                   if da != report.top_da)

    def test_crash_devolution_matches_sequential(self):
        sys_x, rep_x = concurrent_delegation_scenario(
            ("A", "B", "C"), crash=("ws-B", 15.0, 5.0))
        sys_s, rep_s = concurrent_delegation_scenario(
            ("A", "B", "C"), concurrent=False)
        assert rep_x.final_states == rep_s.final_states
        assert set(rep_x.devolved) == set(rep_s.devolved)
        for cell in ("A", "B", "C"):
            devolved_x = [sys_x.repository.read(d).data.get("width")
                          for d in rep_x.devolved[rep_x.sub_das[cell]]]
            devolved_s = [sys_s.repository.read(d).data.get("width")
                          for d in rep_s.devolved[rep_s.sub_das[cell]]]
            assert [round(w, 3) for w in devolved_x] \
                == [round(w, 3) for w in devolved_s]

    def test_server_crash_mid_scenario_recovers(self):
        """Acceptance: kernel-injected server crash + restart recovers
        to the same committed state as the sequential equivalent."""
        sys_x, rep_x = concurrent_delegation_scenario(
            ("A", "B", "C"), crash=("server", 35.0, 5.0))
        sys_s, rep_s = concurrent_delegation_scenario(
            ("A", "B", "C"), concurrent=False)
        assert [(e.action, e.node) for e in sys_x.kernel.injections] \
            == [("crash", "server"), ("restart", "server")]
        assert rep_x.final_states == rep_s.final_states
        for cell in ("A", "B", "C"):
            leaves_x = sorted(
                round(d.data.get("width", 0.0), 3) for d in
                sys_x.repository.graph(rep_x.sub_das[cell]).leaves())
            leaves_s = sorted(
                round(d.data.get("width", 0.0), 3) for d in
                sys_s.repository.graph(rep_s.sub_das[cell]).leaves())
            assert leaves_x == leaves_s


class TestDeterminismGuard:
    """Protects the kernel's (time, priority, seq) tie-breaking."""

    def test_identical_seeded_runs_produce_identical_traces(self):
        __, first = concurrent_delegation_scenario(("A", "B", "C"),
                                                   jitter=0.5, seed=11)
        __, second = concurrent_delegation_scenario(("A", "B", "C"),
                                                    jitter=0.5, seed=11)
        assert first.signature == second.signature
        assert first.makespan == second.makespan
        assert first.events == second.events

    def test_different_seeds_change_the_jittered_trace(self):
        __, first = concurrent_delegation_scenario(("A", "B", "C"),
                                                   jitter=0.5, seed=11)
        __, second = concurrent_delegation_scenario(("A", "B", "C"),
                                                    jitter=0.5, seed=12)
        # same event structure, different jittered end time
        assert first.makespan != second.makespan

    def test_crash_runs_are_deterministic_too(self):
        __, first = concurrent_delegation_scenario(
            ("A", "B"), crash=("ws-A", 12.0, 3.0))
        __, second = concurrent_delegation_scenario(
            ("A", "B"), crash=("ws-A", 12.0, 3.0))
        assert first.signature == second.signature

    def test_cached_run_with_invalidations_is_deterministic(self):
        """Object buffers add sized fetches and asynchronous lease
        invalidations to the event stream — all of them must stay
        ordinary timed events under the (time, priority, seq) tie
        break."""
        first = object_buffer_scenario(team=3, seed=11, jitter=0.2,
                                       write_mix=0.5)
        second = object_buffer_scenario(team=3, seed=11, jitter=0.2,
                                        write_mix=0.5)
        # the run genuinely exercises the cached + invalidation path
        assert first.hits > 0
        assert first.invalidations_applied > 0
        assert first.signature == second.signature
        assert first.makespan == second.makespan
        assert first.bytes_shipped == second.bytes_shipped

    def test_caching_on_off_execute_the_same_sessions(self):
        cached = object_buffer_scenario(team=3, seed=11)
        uncached = object_buffer_scenario(team=3, seed=11,
                                          caching=False)
        assert cached.checkins == uncached.checkins
        assert cached.bytes_shipped < uncached.bytes_shipped
        assert cached.makespan < uncached.makespan


class TestAbandonedStart:
    """A DOP start that dies on a down server must not leak."""

    def _rig(self):
        system = make_vlsi_system(("ws-1",))
        system.tools.register("refine", refine, duration=10.0)
        dots = vlsi_dots()
        da = system.init_design(
            dots["Chip"], chip_spec(500, 500), "d",
            worker_script("w", 2, 10.0), "ws-1",
            initial_data={"cell": "c", "level": "chip"})
        system.start(da.da_id)
        return system, da

    def test_half_begun_dop_is_dropped_and_retried(self):
        from repro.util.errors import RpcError

        system, da = self._rig()
        runtime = system.runtime(da.da_id)
        system.crash_server()
        # checkout of DOV0 hits the dead server after Begin-of-DOP
        with pytest.raises(RpcError):
            runtime.dm.start_step()
        assert runtime.dm.in_flight is not None
        runtime.dm.abandon_start()
        assert runtime.dm.in_flight is None
        assert runtime.client_tm.active_dops() == []
        # after the restart the step retries with a fresh DOP
        system.restart_server()
        assert runtime.dm.step() is True
        assert runtime.dm.executed_dops == 1

    def test_no_orphan_dops_after_concurrent_server_crash(self):
        system, report = concurrent_delegation_scenario(
            ("A", "B", "C"), crash=("server", 35.0, 5.0))
        for cell, da_id in report.sub_das.items():
            assert system.runtime(da_id).client_tm.active_dops() == [], \
                f"orphaned active DOP left behind for {cell}"
