"""Integration tests: every figure/experiment driver runs and its
result carries the paper's expected shape."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    negotiate_border,
    run_t1,
    run_t2,
    run_t3,
    run_t4,
    run_t5,
    run_t6,
)
from repro.bench.figures import (
    run_f1,
    run_f2,
    run_f3,
    run_f4,
    run_f5,
    run_f6,
    run_f7,
    run_f8,
)


class TestFigures:
    def test_f1_levels_nested(self):
        result = run_f1()
        counts = result.data["counts"]
        assert counts["AC"] > 0 and counts["DC"] > 0 and counts["TE"] > 0
        # the TE level carries more operations than the DC level (every
        # DOP wraps several TE operations) — the Fig.1 nesting
        assert counts["TE"] > counts["DC"]

    def test_f2_plane_shape(self):
        result = run_f2()
        tools = result.data["tool_order"]
        assert tools[0] == "structure_synthesis"
        assert tools[-1] == "chip_assembly"
        # 4 hierarchy rows in the matrix
        assert len(result.rows) == 4

    def test_f3_floorplan_outputs(self):
        result = run_f3()
        floorplan = result.data["floorplan"]
        assert floorplan.validate() == []
        assert floorplan.placements
        assert floorplan.subcell_interfaces()

    def test_f4_hierarchy(self):
        result = run_f4()
        hierarchy = result.data["hierarchy"]
        assert len(hierarchy["roots"]) == 1
        root = hierarchy["roots"][0]
        assert len(root["children"]) == 4      # A, B, C, D
        assert result.data["delegations"] == 4

    def test_f5_scenario_content(self):
        result = run_f5()
        report = result.data["report"]
        assert report.impossible_from
        assert len(report.modified_specs) == 2
        assert all(state == "terminated"
                   for da, state in report.final_states.items()
                   if da != report.top_da)
        assert sum(len(v) for v in report.inherited_dovs.values()) >= 4

    def test_f6_scripts(self):
        result = run_f6()
        assert result.data["fig6a_executed"][0] == "structure_synthesis"
        assert result.data["fig6a_executed"][-1] == "chip_assembly"
        assert len(result.data["fig6b_sequences"]) == 3

    def test_f7_state_machine_coverage(self):
        result = run_f7()
        table = result.data["table"]
        assert result.data["legal"] == len(table)
        total_pairs = 5 * 15  # states x operations
        assert result.data["legal"] + result.data["illegal"] == total_pairs

    def test_f8_recovery_outcomes(self):
        result = run_f8()
        before, after = result.data["dov_recovery"]
        assert after == before            # all durable DOVs redone
        das_before, das_after = result.data["da_recovery"]
        assert das_after == das_before    # CM state reloaded
        assert result.data["episodes"] == 3


class TestExperiments:
    def test_t1_shape(self):
        result = run_t1(team_sizes=(3, 6), seed=7)
        by_team = {}
        for row in result.rows:
            if row["topology"] != "chain":
                continue
            by_team.setdefault(row["team"], {})[row["model"]] = row
        for team, models in by_team.items():
            concord = models["concord"]["makespan"]
            flat = models["flat_acid"]["makespan"]
            contracts = models["contracts"]["makespan"]
            assert concord < contracts < flat
            # flat/nested serialise completely
            assert flat == pytest.approx(models["flat_acid"]["total_work"])
            assert models["nested"]["makespan"] == flat
        # the absolute gap grows with team size
        gap_small = by_team[3]["flat_acid"]["makespan"] \
            - by_team[3]["concord"]["makespan"]
        gap_large = by_team[6]["flat_acid"]["makespan"] \
            - by_team[6]["concord"]["makespan"]
        assert gap_large > gap_small
        # the fan-in topology is present and concord wins there too
        fan_in = [r for r in result.rows if r["topology"] == "fan-in"]
        assert fan_in
        for team in {r["team"] for r in fan_in}:
            rows = {r["model"]: r for r in fan_in if r["team"] == team}
            assert rows["concord"]["makespan"] <= \
                rows["flat_acid"]["makespan"]

    def test_t2_shape(self):
        result = run_t2(crash_times=(25.0, 140.0))
        rows = {(r["model"], r["crash_time"]): r["lost_work"]
                for r in result.rows}
        # flat grows linearly
        assert rows[("flat_acid", 140.0)] > rows[("flat_acid", 25.0)]
        assert rows[("flat_acid", 25.0)] == 25.0
        # concord with the tighter interval never loses more than it
        assert rows[("concord(rp=10)", 140.0)] < 10.0
        assert rows[("concord(rp=10)", 25.0)] <= \
            rows[("concord(rp=30)", 25.0)] + 10.0

    def test_t3_shape(self):
        result = run_t3()
        rows = {(r["protocol"], r["case"]): r for r in result.rows}
        basic_abort = rows[("basic", "one-no abort")]
        pa_abort = rows[("presumed_abort", "one-no abort")]
        assert pa_abort["messages"] < basic_abort["messages"]
        assert pa_abort["forced_writes"] < basic_abort["forced_writes"]
        ro = rows[("presumed_abort+ro", "read-only mix")]
        plain = rows[("presumed_abort", "read-only mix")]
        assert ro["messages"] < plain["messages"]
        assert ro["forced_writes"] < plain["forced_writes"]

    def test_t4_runs(self):
        result = run_t4(operations=500, sharing_levels=(1, 4),
                        depths=(2, 4))
        measures = [r["measure"] for r in result.rows]
        assert any("short-lock" in m for m in measures)
        sharing_rows = [r for r in result.rows
                        if "derivation conflicts" in r["measure"]]
        assert sharing_rows[0]["value"] <= sharing_rows[-1]["value"]

    def test_t5_shape(self):
        result = run_t5(severities=(0.5, 0.9, 1.2))
        rows = {r["severity"]: r for r in result.rows}
        assert rows[0.5]["outcome"] == "agreed"
        assert rows[0.9]["outcome"] == "agreed"
        assert rows[0.5]["rounds"] < rows[0.9]["rounds"]
        assert rows[1.2]["outcome"] == "escalated"
        assert rows[1.2]["escalations"] == 1

    def test_t6_log_growth_linear(self):
        result = run_t6(hierarchy_sizes=(5, 10))
        small, large = result.rows
        assert large["protocol_log_records"] > \
            small["protocol_log_records"]
        assert large["delegations"] == 9
        assert small["delegations"] == 4

    def test_negotiate_border_feasible(self):
        outcome = negotiate_border(100.0, 30.0, 30.0)
        assert outcome["outcome"] == "agreed"
        assert outcome["state_a"] == "active"

    def test_negotiate_border_infeasible(self):
        outcome = negotiate_border(100.0, 70.0, 70.0)
        assert outcome["outcome"] == "escalated"


class TestRendering:
    def test_render_produces_table(self):
        result = run_t3()
        text = result.render()
        assert "T3" in text
        assert "protocol" in text
        assert "note:" in text
