"""Tests for version configurations (the [KS92] extension)."""

from __future__ import annotations

import pytest

from repro.repository.configurations import ConfigurationManager
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.util.errors import RepositoryError, UnknownObjectError
from repro.util.ids import IdGenerator


@pytest.fixture
def rig():
    repo = DesignDataRepository(IdGenerator())
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("v", AttributeKind.INT, required=False)]))
    repo.create_graph("da-a")
    repo.create_graph("da-b")
    a1 = repo.checkin("da-a", "Cell", {"v": 1})
    a2 = repo.checkin("da-a", "Cell", {"v": 2}, parents=(a1.dov_id,),
                      created_at=1.0)
    b1 = repo.checkin("da-b", "Cell", {"v": 10}, created_at=0.5)
    manager = ConfigurationManager(repo, IdGenerator())
    return repo, manager, a1, a2, b1


class TestCompose:
    def test_valid_composition(self, rig):
        __, manager, a1, __a2, b1 = rig
        config = manager.compose("rel-1", {"A": a1.dov_id,
                                           "B": b1.dov_id})
        assert config.members() == [a1.dov_id, b1.dov_id]
        assert config.validate(manager.repository) == []

    def test_missing_dov_rejected(self, rig):
        __, manager, *_ = rig
        with pytest.raises(RepositoryError):
            manager.compose("bad", {"A": "dov-404"})

    def test_two_versions_of_same_graph_rejected(self, rig):
        __, manager, a1, a2, __b1 = rig
        with pytest.raises(RepositoryError):
            manager.compose("bad", {"A": a1.dov_id, "A2": a2.dov_id})

    def test_unvalidated_compose_allows_problems(self, rig):
        __, manager, a1, a2, __b1 = rig
        config = manager.compose("lenient",
                                 {"A": a1.dov_id, "A2": a2.dov_id},
                                 require_valid=False)
        assert len(config.validate(manager.repository)) == 1


class TestLatest:
    def test_binds_newest_leaves(self, rig):
        __, manager, __a1, a2, b1 = rig
        config = manager.latest("tip", {"A": "da-a", "B": "da-b"})
        assert config.bindings["A"] == a2.dov_id
        assert config.bindings["B"] == b1.dov_id

    def test_empty_graph_rejected(self, rig):
        repo, manager, *_ = rig
        repo.create_graph("da-empty")
        with pytest.raises(RepositoryError):
            manager.latest("x", {"E": "da-empty"})


class TestLifecycle:
    def test_freeze(self, rig):
        __, manager, a1, __a2, b1 = rig
        config = manager.compose("rel", {"A": a1.dov_id, "B": b1.dov_id})
        manager.freeze(config.config_id)
        assert manager.get(config.config_id).frozen

    def test_derive_rebinds_and_links(self, rig):
        __, manager, a1, a2, b1 = rig
        base = manager.compose("rel-1", {"A": a1.dov_id, "B": b1.dov_id})
        successor = manager.derive(base.config_id, "rel-2",
                                   {"A": a2.dov_id})
        assert successor.bindings == {"A": a2.dov_id, "B": b1.dov_id}
        assert successor.parent == base.config_id
        # the base is untouched
        assert manager.get(base.config_id).bindings["A"] == a1.dov_id

    def test_derive_unknown_slot_rejected(self, rig):
        __, manager, a1, __a2, b1 = rig
        base = manager.compose("rel", {"A": a1.dov_id, "B": b1.dov_id})
        with pytest.raises(RepositoryError):
            manager.derive(base.config_id, "x", {"C": b1.dov_id})

    def test_lineage(self, rig):
        __, manager, a1, a2, b1 = rig
        first = manager.compose("v1", {"A": a1.dov_id, "B": b1.dov_id})
        second = manager.derive(first.config_id, "v2", {"A": a2.dov_id})
        third = manager.derive(second.config_id, "v3", {"B": b1.dov_id})
        names = [c.name for c in manager.lineage(third.config_id)]
        assert names == ["v1", "v2", "v3"]

    def test_unknown_configuration(self, rig):
        __, manager, *_ = rig
        with pytest.raises(UnknownObjectError):
            manager.get("cfg-404")
