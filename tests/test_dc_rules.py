"""Unit tests for the ECA rule engine."""

from __future__ import annotations

import pytest

from repro.dc.rules import EcaRule, RuleEngine, require_propagate_rule
from repro.util.errors import RuleError


def rule(name="r1", event="Require", condition=lambda env: True,
         action=lambda env: "done", **kwargs):
    return EcaRule(name, event, condition, action, **kwargs)


class TestRegistration:
    def test_register_and_len(self):
        engine = RuleEngine()
        engine.register(rule())
        assert len(engine) == 1

    def test_duplicate_name_rejected(self):
        engine = RuleEngine()
        engine.register(rule())
        with pytest.raises(RuleError):
            engine.register(rule())

    def test_remove(self):
        engine = RuleEngine()
        engine.register(rule())
        assert engine.remove("r1") is True
        assert engine.remove("r1") is False


class TestDispatch:
    def test_matching_rule_fires(self):
        engine = RuleEngine()
        engine.register(rule())
        firings = engine.dispatch("Require", {})
        assert len(firings) == 1
        assert firings[0].result == "done"
        assert firings[0].error == ""

    def test_event_mismatch_no_fire(self):
        engine = RuleEngine()
        engine.register(rule(event="Propose"))
        assert engine.dispatch("Require", {}) == []

    def test_condition_false_no_fire(self):
        engine = RuleEngine()
        engine.register(rule(condition=lambda env: env.get("go", False)))
        assert engine.dispatch("Require", {"go": False}) == []
        assert len(engine.dispatch("Require", {"go": True})) == 1

    def test_disabled_rule_skipped(self):
        engine = RuleEngine()
        sleeping = rule()
        sleeping.enabled = False
        engine.register(sleeping)
        assert engine.dispatch("Require", {}) == []

    def test_priority_order(self):
        engine = RuleEngine()
        order = []
        engine.register(rule("late", action=lambda e: order.append("late"),
                             priority=5))
        engine.register(rule("early",
                             action=lambda e: order.append("early"),
                             priority=1))
        engine.dispatch("Require", {})
        assert order == ["early", "late"]

    def test_failing_action_recorded_not_raised(self):
        engine = RuleEngine()

        def boom(env):
            raise ValueError("bad")

        engine.register(rule("boom", action=boom))
        engine.register(rule("next"))
        firings = engine.dispatch("Require", {})
        assert len(firings) == 2
        assert "ValueError" in firings[0].error
        assert firings[1].result == "done"

    def test_raising_condition_is_rule_error(self):
        engine = RuleEngine()
        engine.register(rule(condition=lambda env: 1 / 0))
        with pytest.raises(RuleError):
            engine.dispatch("Require", {})

    def test_firings_accumulate(self):
        engine = RuleEngine()
        engine.register(rule())
        engine.dispatch("Require", {})
        engine.dispatch("Require", {})
        assert len(engine.firings) == 2


class TestRequirePropagateRule:
    def test_paper_rule_fires_when_available(self):
        propagated = []
        paper_rule = require_propagate_rule(
            find_qualifying=lambda env: env.get("available"),
            propagate=lambda env, dov: propagated.append(dov))
        engine = RuleEngine()
        engine.register(paper_rule)
        engine.dispatch("Require", {"available": "dov-7"})
        assert propagated == ["dov-7"]

    def test_paper_rule_silent_when_unavailable(self):
        propagated = []
        paper_rule = require_propagate_rule(
            find_qualifying=lambda env: None,
            propagate=lambda env, dov: propagated.append(dov))
        engine = RuleEngine()
        engine.register(paper_rule)
        assert engine.dispatch("Require", {}) == []
        assert propagated == []
