"""Sharded deterministic event loop: merge order, routing, and the
shards>1 state-equivalence contract."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.shard import ShardedKernel


class TestMergeOrder:
    def test_shard1_traces_like_the_plain_kernel(self):
        """N=1 is the compat mode: same events, same trace, byte for
        byte."""
        def storm(kernel):
            for index in range(50):
                kernel.defer((index * 7) % 13 + index * 0.1,
                             lambda: None, label=f"evt-{index}")
            kernel.run()
            return kernel.trace_signature()

        assert storm(ShardedKernel(SimClock(), shards=1)) \
            == storm(Kernel(SimClock()))

    def test_lowest_timestamp_merge_across_shards(self):
        """Events interleave across streams in exact global
        (time, priority, seq) order."""
        kernel = ShardedKernel(SimClock(), shards=3,
                               trace_events=False)
        seen: list[tuple[float, int]] = []
        for index in range(30):
            shard = index % 3
            time = (index * 11) % 17 + 0.5
            kernel.defer_to(shard, time,
                            lambda t=time, s=shard:
                            seen.append((t, s)),
                            label="evt")
        kernel.run()
        assert [t for t, _ in seen] == sorted(t for t, _ in seen)
        assert {s for _, s in seen} == {0, 1, 2}

    def test_same_instant_ties_resolve_by_seq_globally(self):
        kernel = ShardedKernel(SimClock(), shards=2,
                               trace_events=False)
        seen: list[int] = []
        for index in range(10):
            kernel.defer_to(index % 2, 1.0,
                            lambda i=index: seen.append(i))
        kernel.run()
        assert seen == list(range(10))


class TestRouting:
    def test_placement_is_stable_and_pinnable(self):
        kernel = ShardedKernel(SimClock(), shards=4)
        auto = kernel.shard_of("ws-A")
        assert kernel.shard_of("ws-A") == auto  # crc32: stable
        kernel.assign_shard("ws-A", 3)
        assert kernel.shard_of("ws-A") == 3
        with pytest.raises(ValueError):
            kernel.assign_shard("ws-A", 4)

    def test_cross_vs_local_traffic_accounting(self):
        kernel = ShardedKernel(SimClock(), shards=2,
                               trace_events=False)
        kernel.defer_to(0, 1.0, lambda: None)  # from shard 0: local
        kernel.defer_to(1, 1.0, lambda: None)  # crosses
        stats = kernel.shard_stats()
        assert stats["local_messages"] == 1
        assert stats["cross_shard_messages"] == 1
        assert stats["cross_shard_ratio"] == 0.5
        kernel.run()

    def test_cascades_stay_shard_local(self):
        """An event scheduled while shard S executes lands on S —
        local work never silently migrates."""
        kernel = ShardedKernel(SimClock(), shards=2,
                               trace_events=False)
        depths: list[list[int]] = []

        def parent():
            kernel.defer(1.0, lambda: None)
            depths.append(list(
                kernel.shard_stats()["stream_depths"]))

        kernel.defer_to(1, 1.0, parent)
        kernel.run()
        assert depths == [[0, 1]]  # the child landed on shard 1

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedKernel(SimClock(), shards=0)


class TestScenarioEquivalence:
    def test_t7_reports_identical_under_shards2(self):
        from dataclasses import asdict

        from repro.bench.scenarios import (
            concurrent_delegation_scenario,
        )

        __, single = concurrent_delegation_scenario(("A", "B"))
        __, sharded = concurrent_delegation_scenario(("A", "B"),
                                                     shards=2)
        assert asdict(single) == asdict(sharded)

    def test_shards2_smoke_runs_cross_shard_traffic(self):
        from repro.bench.scenarios import (
            concurrent_delegation_scenario,
        )

        system, __ = concurrent_delegation_scenario(("A", "B"),
                                                    shards=2)
        stats = system.kernel.shard_stats()
        assert stats["shards"] == 2
        assert stats["cross_shard_messages"] > 0


class TestShardTraceCapture:
    """The sharded loop's merged trace IS the single-kernel trace."""

    def test_merged_event_log_equals_single_kernel(self):
        """At shards>1 every executed event still flows through
        ``_execute``, so the merged (time, priority, seq, label)
        stream is identical to the unsharded kernel's."""
        def storm(kernel):
            for index in range(40):
                kernel.defer_to(index % 3, (index * 7) % 13 + 0.25,
                                lambda: None, label=f"evt-{index}")
            kernel.run()
            return list(kernel.event_log)

        sharded = storm(ShardedKernel(SimClock(), shards=3))
        plain = storm(Kernel(SimClock()))
        assert sharded == plain

    def test_recorded_scenario_trace_is_shard_invariant(self):
        """A T8 trace recorded at shards=2 equals the shards=1
        recording byte for byte — the capture side of the replay
        oracle's shard override."""
        from repro.scenario import canonical_scenarios
        from repro.sim.trace import record_scenario

        config = canonical_scenarios()["t8_object_buffers"]
        one = record_scenario(config, shards=1)
        two = record_scenario(config, shards=2)
        assert two.events == one.events
        assert two.final_time == one.final_time
        assert two.meta["shards"] == 2

    def test_untraced_sharded_run_keeps_merge_order(self):
        """trace_events=False at shards>1: no log, same dispatch."""
        seen: list[str] = []

        def storm(kernel):
            for index in range(20):
                kernel.defer_to(index % 2, (index * 5) % 7 + 0.5,
                                lambda i=index: seen.append(f"e{i}"),
                                label="evt")
            kernel.run()

        kernel = ShardedKernel(SimClock(), shards=2,
                               trace_events=False)
        storm(kernel)
        untraced, seen = seen, []
        storm(ShardedKernel(SimClock(), shards=2))
        assert untraced == seen
        assert kernel.event_log == []
