"""Tests for cascading withdrawal along derivation chains."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.dc.script import DopStep, Script, Sequence
from repro.vlsi.tools import vlsi_dots

NOOP = Script(Sequence(DopStep("structure_synthesis")), "noop")


def module_data(width):
    return {"cell": "m", "level": "module", "width": width,
            "height": width, "area": width * width}


@pytest.fixture
def chain():
    """a -> b -> c usage chain: b derives from a's result and
    pre-releases its derivative to c."""
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3", "ws-4"))
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", NOOP, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b", "c"]}})
    system.start(top.da_id)
    das = {}
    for name, workstation in (("a", "ws-2"), ("b", "ws-3"),
                              ("c", "ws-4")):
        das[name] = system.create_sub_da(
            top.da_id, dots["Module"], chip_spec(50, 50), name, NOOP,
            workstation)
        system.start(das[name].da_id)
    a, b, c = das["a"], das["b"], das["c"]

    # a produces + propagates to b
    source = system.repository.checkin(a.da_id, "Module",
                                       module_data(10.0))
    system.cm.require(b.da_id, a.da_id, {"width-limit"})
    system.cm.propagate(a.da_id, source.dov_id)

    # b derives from it and propagates the derivative to c
    derived = system.repository.checkin(
        b.da_id, "Module", module_data(12.0),
        parents=(source.dov_id,))
    system.cm.require(c.da_id, b.da_id, {"width-limit"})
    system.cm.propagate(b.da_id, derived.dov_id)
    return system, a, b, c, source, derived


class TestCascade:
    def test_withdrawal_cascades_down_the_chain(self, chain):
        system, a, b, c, source, derived = chain
        assert system.cm.in_scope(c.da_id, derived.dov_id)
        system.cm.withdraw(a.da_id, source.dov_id)
        # b lost the source ...
        assert not system.cm.in_scope(b.da_id, source.dov_id)
        # ... and c lost b's derivative (no replacement existed)
        assert not system.cm.in_scope(c.da_id, derived.dov_id)
        usage_bc = system.cm.usage(c.da_id, b.da_id)
        assert usage_bc.withdrawn == [derived.dov_id]
        messages = system.cm.pop_messages(c.da_id, "withdrawal")
        assert len(messages) == 1

    def test_cascade_replaces_when_possible(self, chain):
        system, a, b, c, source, derived = chain
        # b also has an independently derived (not from 'source')
        # qualifying version
        independent = system.repository.checkin(b.da_id, "Module",
                                                module_data(9.0))
        system.cm.evaluate(b.da_id, independent.dov_id)
        system.cm.withdraw(a.da_id, source.dov_id)
        usage_bc = system.cm.usage(c.da_id, b.da_id)
        # the tainted derivative was replaced by the independent one
        assert usage_bc.delivered == [independent.dov_id]
        assert system.cm.in_scope(c.da_id, independent.dov_id)
        assert not system.cm.in_scope(c.da_id, derived.dov_id)

    def test_cascade_disabled(self, chain):
        system, a, b, c, source, derived = chain
        system.cm.withdraw(a.da_id, source.dov_id, cascade=False)
        # direct withdrawal happened, the chain did not
        assert not system.cm.in_scope(b.da_id, source.dov_id)
        assert system.cm.in_scope(c.da_id, derived.dov_id)

    def test_untainted_propagations_survive(self, chain):
        system, a, b, c, source, derived = chain
        clean = system.repository.checkin(b.da_id, "Module",
                                          module_data(8.0))
        system.cm.propagate(b.da_id, clean.dov_id)
        system.cm.withdraw(a.da_id, source.dov_id)
        # the clean version (no lineage to 'source') stays delivered
        usage_bc = system.cm.usage(c.da_id, b.da_id)
        assert clean.dov_id in usage_bc.delivered

    def test_derived_from_reachability(self, chain):
        system, a, b, __, source, derived = chain
        assert system.cm._derived_from(b.da_id, derived.dov_id,
                                       source.dov_id)
        assert not system.cm._derived_from(b.da_id, derived.dov_id,
                                           "dov-404")
        assert not system.cm._derived_from(a.da_id, "dov-404",
                                           source.dov_id)
