"""Unit tests for DOVs and derivation graphs."""

from __future__ import annotations

import pytest

from repro.repository.versions import (
    DerivationGraph,
    DesignObjectVersion,
    payload_fast_path,
)
from repro.util.errors import UnknownObjectError


def dov(dov_id: str, parents: tuple[str, ...] = (),
        **data) -> DesignObjectVersion:
    return DesignObjectVersion(dov_id, "Cell", dict(data), "da-1", 0.0,
                               parents)


class TestDesignObjectVersion:
    def test_copy_data_is_private(self):
        # fast path (default): the payload is frozen, so the "copy" is
        # the shared immutable — no reference can corrupt the version
        version = dov("v1", nested={"a": [1]})
        copy = version.copy_data()
        with pytest.raises(TypeError):
            copy["nested"]["a"].append(2)
        assert version.data["nested"]["a"] == [1]

    def test_copy_data_is_deep_without_fast_path(self):
        with payload_fast_path(False):
            version = dov("v1", nested={"a": [1]})
            copy = version.copy_data()
            copy["nested"]["a"].append(2)
            assert version.data["nested"]["a"] == [1]

    def test_get_with_default(self):
        version = dov("v1", area=2.0)
        assert version.get("area") == 2.0
        assert version.get("missing", "d") == "d"


class TestDerivationGraph:
    def _chain(self) -> DerivationGraph:
        graph = DerivationGraph("da-1")
        graph.add(dov("v1"))
        graph.add(dov("v2", ("v1",)))
        graph.add(dov("v3", ("v2",)))
        return graph

    def test_root_detection(self):
        graph = self._chain()
        assert graph.root_id == "v1"

    def test_contains_and_len(self):
        graph = self._chain()
        assert "v2" in graph
        assert "vx" not in graph
        assert len(graph) == 3

    def test_duplicate_rejected(self):
        graph = self._chain()
        with pytest.raises(ValueError):
            graph.add(dov("v1"))

    def test_children_and_leaves(self):
        graph = self._chain()
        assert graph.children_of("v1") == ["v2"]
        assert [leaf.dov_id for leaf in graph.leaves()] == ["v3"]

    def test_branching_leaves(self):
        graph = self._chain()
        graph.add(dov("v4", ("v2",)))
        leaves = {leaf.dov_id for leaf in graph.leaves()}
        assert leaves == {"v3", "v4"}

    def test_ancestors_descendants(self):
        graph = self._chain()
        assert graph.ancestors_of("v3") == {"v1", "v2"}
        assert graph.descendants_of("v1") == {"v2", "v3"}

    def test_is_ancestor(self):
        graph = self._chain()
        assert graph.is_ancestor("v1", "v3")
        assert not graph.is_ancestor("v3", "v1")

    def test_multi_parent_merge(self):
        graph = DerivationGraph("da-1")
        graph.add(dov("a"))
        graph.add(dov("b"))
        graph.add(dov("m", ("a", "b")))
        assert graph.ancestors_of("m") == {"a", "b"}

    def test_foreign_parent_ignored_locally(self):
        graph = DerivationGraph("da-1")
        graph.add(dov("local", parents=("foreign-dov",)))
        # the foreign parent creates no local edge but is kept on the DOV
        assert graph.get("local").parents == ("foreign-dov",)
        assert graph.ancestors_of("local") == set()

    def test_unknown_lookup_raises(self):
        graph = self._chain()
        with pytest.raises(UnknownObjectError):
            graph.get("nope")
        with pytest.raises(UnknownObjectError):
            graph.children_of("nope")
        with pytest.raises(UnknownObjectError):
            graph.descendants_of("nope")

    def test_root_with_parents_not_root(self):
        graph = DerivationGraph("da-1")
        graph.add(dov("v1", parents=("external",)))
        assert graph.root_id is None

    def test_to_dict(self):
        graph = self._chain()
        snapshot = graph.to_dict()
        assert snapshot["owner"] == "da-1"
        assert snapshot["root"] == "v1"
        assert snapshot["edges"]["v1"] == ["v2"]
        assert set(snapshot["nodes"]) == {"v1", "v2", "v3"}
