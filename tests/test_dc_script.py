"""Unit tests for scripts: AST, enumeration, cursor interpretation."""

from __future__ import annotations

import pytest

from repro.dc.script import (
    ActionKind,
    Alternative,
    DaOpStep,
    DopStep,
    Iteration,
    Open,
    Parallel,
    Script,
    Sequence,
    completely_open_script,
)
from repro.util.errors import ScriptError


class TestAstConstruction:
    def test_sequence_needs_children(self):
        with pytest.raises(ScriptError):
            Sequence()

    def test_alternative_needs_two_paths(self):
        with pytest.raises(ScriptError):
            Alternative(DopStep("a"))

    def test_parallel_needs_two_branches(self):
        with pytest.raises(ScriptError):
            Parallel(DopStep("a"))


class TestEnumeration:
    def test_sequence(self):
        script = Script(Sequence(DopStep("a"), DopStep("b")))
        assert script.sequences() == [["a", "b"]]

    def test_alternative(self):
        script = Script(Alternative(DopStep("a"), DopStep("b")))
        assert sorted(script.sequences()) == [["a"], ["b"]]

    def test_da_op_invisible(self):
        script = Script(Sequence(DopStep("a"), DaOpStep("Evaluate")))
        assert script.sequences() == [["a"]]

    def test_iteration_unrolls(self):
        script = Script(Iteration(DopStep("a")))
        assert script.sequences(max_iterations=2) == [["a"], ["a", "a"]]

    def test_parallel_interleavings(self):
        script = Script(Parallel(DopStep("a"), DopStep("b")))
        assert sorted(script.sequences()) == [["a", "b"], ["b", "a"]]

    def test_open_contributes_wildcard(self):
        script = Script(Sequence(DopStep("a"), Open(), DopStep("b")))
        assert script.sequences() == [["a", Open.WILDCARD, "b"]]

    def test_nested_composition(self):
        script = Script(Sequence(
            DopStep("a"),
            Alternative(DopStep("b"), Sequence(DopStep("c"),
                                               DopStep("d")))))
        assert sorted(script.sequences()) == [["a", "b"], ["a", "c", "d"]]


class TestCursorBasics:
    def test_sequence_order(self):
        cursor = Script(Sequence(DopStep("a"), DopStep("b"))).cursor()
        first = cursor.enabled()
        assert len(first) == 1
        assert first[0].tool == "a"
        cursor.fire(first[0].token)
        assert cursor.enabled()[0].tool == "b"
        cursor.fire(cursor.enabled()[0].token)
        assert cursor.is_done()
        assert cursor.enabled() == []

    def test_cannot_fire_disabled_position(self):
        cursor = Script(Sequence(DopStep("a"), DopStep("b"))).cursor()
        with pytest.raises(ScriptError):
            cursor.fire("0.s1")  # b is not enabled yet

    def test_da_op_action_kind(self):
        cursor = Script(DaOpStep("Evaluate")).cursor()
        action = cursor.enabled()[0]
        assert action.kind is ActionKind.DA_OP


class TestCursorAlternative:
    def test_choice_then_path(self):
        cursor = Script(Alternative(DopStep("a"), DopStep("b"))).cursor()
        choice = cursor.enabled()[0]
        assert choice.kind is ActionKind.CHOICE
        assert choice.options == 2
        cursor.fire(choice.token, 1)
        assert cursor.enabled()[0].tool == "b"

    def test_invalid_choice_rejected(self):
        cursor = Script(Alternative(DopStep("a"), DopStep("b"))).cursor()
        with pytest.raises(ScriptError):
            cursor.fire(cursor.enabled()[0].token, 5)
        with pytest.raises(ScriptError):
            cursor.fire(cursor.enabled()[0].token, None)


class TestCursorParallel:
    def test_branches_concurrently_enabled(self):
        cursor = Script(Parallel(DopStep("a"), DopStep("b"))).cursor()
        tools = {a.tool for a in cursor.enabled()}
        assert tools == {"a", "b"}

    def test_any_interleaving_accepted(self):
        cursor = Script(Parallel(DopStep("a"), DopStep("b"))).cursor()
        b_action = next(a for a in cursor.enabled() if a.tool == "b")
        cursor.fire(b_action.token)
        a_action = cursor.enabled()[0]
        assert a_action.tool == "a"
        cursor.fire(a_action.token)
        assert cursor.is_done()


class TestCursorIteration:
    def test_loop_again_resets_body(self):
        cursor = Script(Iteration(DopStep("a"))).cursor()
        cursor.fire(cursor.enabled()[0].token)           # body round 0
        loop = cursor.enabled()[0]
        assert loop.kind is ActionKind.LOOP
        cursor.fire(loop.token, "again")
        body = cursor.enabled()[0]
        assert body.tool == "a"                           # fresh round
        cursor.fire(body.token)
        cursor.fire(cursor.enabled()[0].token, "exit")
        assert cursor.is_done()

    def test_max_rounds_enforced(self):
        cursor = Script(Iteration(DopStep("a"), max_rounds=2)).cursor()
        cursor.fire(cursor.enabled()[0].token)
        cursor.fire(cursor.enabled()[0].token, "again")
        cursor.fire(cursor.enabled()[0].token)
        with pytest.raises(ScriptError):
            cursor.fire(cursor.enabled()[0].token, "again")

    def test_invalid_loop_decision(self):
        cursor = Script(Iteration(DopStep("a"))).cursor()
        cursor.fire(cursor.enabled()[0].token)
        with pytest.raises(ScriptError):
            cursor.fire(cursor.enabled()[0].token, "maybe")


class TestCursorOpen:
    def test_insert_and_close(self):
        cursor = completely_open_script().cursor()
        open_action = cursor.enabled()[0]
        assert open_action.kind is ActionKind.OPEN
        cursor.fire(open_action.token, ("insert", "t1"))
        inserted = cursor.enabled()[0]
        assert inserted.kind is ActionKind.DOP
        assert inserted.tool == "t1"
        cursor.fire(inserted.token)
        cursor.fire(cursor.enabled()[0].token, "close")
        assert cursor.is_done()

    def test_close_without_inserts(self):
        cursor = completely_open_script().cursor()
        cursor.fire(cursor.enabled()[0].token, "close")
        assert cursor.is_done()

    def test_pending_insert_blocks_closing_completion(self):
        cursor = completely_open_script().cursor()
        token = cursor.enabled()[0].token
        cursor.fire(token, ("insert", "t1"))
        # the inserted step must run; the open segment shows it
        assert cursor.enabled()[0].tool == "t1"
        assert not cursor.is_done()

    def test_allowed_tools_enforced(self):
        cursor = Script(Open(allowed_tools=("x",))).cursor()
        token = cursor.enabled()[0].token
        with pytest.raises(ScriptError):
            cursor.fire(token, ("insert", "y"))
        cursor.fire(token, ("insert", "x"))

    def test_bad_open_decision(self):
        cursor = completely_open_script().cursor()
        with pytest.raises(ScriptError):
            cursor.fire(cursor.enabled()[0].token, "bogus")


class TestReplayAndReset:
    def test_replay_reproduces_state(self):
        script = Script(Sequence(
            DopStep("a"),
            Alternative(DopStep("b"), DopStep("c")),
            Iteration(DopStep("d"), max_rounds=3),
        ))
        cursor = script.cursor()
        cursor.fire(cursor.enabled()[0].token)            # a
        cursor.fire(cursor.enabled()[0].token, 1)         # choose c
        cursor.fire(cursor.enabled()[0].token)            # c
        cursor.fire(cursor.enabled()[0].token)            # d round 0
        cursor.fire(cursor.enabled()[0].token, "again")
        history = list(cursor.history)

        replayed = script.cursor()
        replayed.replay(history)
        assert [a.token for a in replayed.enabled()] == \
               [a.token for a in cursor.enabled()]
        assert list(replayed.executed_tools()) == \
               list(cursor.executed_tools())

    def test_executed_tools(self):
        script = Script(Sequence(DopStep("a"), DaOpStep("Evaluate"),
                                 DopStep("b")))
        cursor = script.cursor()
        while not cursor.is_done():
            cursor.fire(cursor.enabled()[0].token)
        assert list(cursor.executed_tools()) == ["a", "b"]

    def test_reset_subtree_reenables(self):
        script = Script(Sequence(DopStep("a"), DopStep("b")))
        cursor = script.cursor()
        cursor.fire(cursor.enabled()[0].token)
        cursor.fire(cursor.enabled()[0].token)
        assert cursor.is_done()
        cleared = cursor.reset_subtree("0.s1")
        assert cleared == 1
        assert cursor.enabled()[0].tool == "b"
