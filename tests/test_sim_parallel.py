"""Multi-process sharded kernel: protocol, snapshots, crash parity.

The invariant every test here defends: the merged ``(time, priority,
seq, label)`` stream of a multi-process run is **byte-identical** to
the single-process :class:`~repro.sim.shard.ShardedKernel` execution
of the same workload.  Coverage spans the three layers of
:mod:`repro.sim.parallel`:

* the **program protocol** — conservative lookahead windows,
  speculation and checkpoint rollback on the saturation-storm shape;
* the **kernel checkpoint** primitives (``snapshot`` / ``restore`` /
  ``inject`` / ``filing_on``) the worker engines are built on;
* the **replicated scenario mode**, including crash injection under
  ``shards > 1`` — crash/restart events file on the crashed node's
  owning shard and reports match the single-shard run exactly.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import concurrent_delegation_scenario
from repro.scenario import canonical_scenarios, validate_scenario
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.parallel import (
    build_saturation_storm,
    run_program_parallel,
    run_program_sequential,
    run_scenario_replicated,
)
from repro.sim.shard import ShardedKernel
from repro.sim.trace import record_scenario
from repro.util.errors import KernelError

#: small enough for tier-1 wall clock, big enough to force several
#: coordinator rounds, speculation commits AND at least one rollback
STORM = dict(workstations=40, leases_per_ws=64)


class TestShardProgram:
    def test_storm_is_deterministic(self):
        first = build_saturation_storm(shards=4, **STORM)
        second = build_saturation_storm(shards=4, **STORM)
        assert first.programs == second.programs
        assert first.total_events == second.total_events

    def test_event_population_is_shard_agnostic(self):
        """Shard assignment moves events between streams but never
        changes times, seqs or labels — one sequential reference
        serves every shard count."""
        one = run_program_sequential(build_saturation_storm(
            shards=1, **STORM))
        four = run_program_sequential(build_saturation_storm(
            shards=4, **STORM))
        assert one.events == four.events
        assert one.final_time == four.final_time

    def test_zero_jitter_is_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            build_saturation_storm(shards=2, jitter=0.0)

    def test_work_shares_cover_the_whole_storm(self):
        storm = build_saturation_storm(shards=4, **STORM)
        assert abs(sum(storm.meta["work_shares"]) - 1.0) < 0.01


class TestParallelProtocol:
    """Real spawned workers vs the in-process reference."""

    def test_merged_trace_is_byte_identical(self):
        storm = build_saturation_storm(shards=4, **STORM)
        reference = run_program_sequential(storm)
        parallel = run_program_parallel(storm)
        assert parallel.events == reference.events
        assert parallel.executed == reference.executed
        assert parallel.final_time == reference.final_time

    def test_speculation_and_rollback_are_exercised(self):
        """The storm must actually drive the interesting paths: the
        workers speculate past the horizon, commit most of it, and at
        least one straggler forces a checkpoint rollback — all without
        perturbing the merged stream (previous test)."""
        stats = run_program_parallel(
            build_saturation_storm(shards=4, **STORM)).stats
        assert stats["speculated"] > 0
        assert stats["committed_speculative"] > 0
        assert stats["rollbacks"] > 0
        assert stats["rolled_back_events"] > 0

    def test_conservative_only_mode_is_identical_too(self):
        storm = build_saturation_storm(shards=2, **STORM)
        reference = run_program_sequential(storm)
        conservative = run_program_parallel(storm, speculate=False)
        assert conservative.events == reference.events
        assert conservative.stats["rollbacks"] == 0
        assert conservative.stats["speculated"] == 0


class TestSnapshotRestore:
    def _loaded_kernel(self, cls):
        kernel = cls(SimClock(), wheel=False) if cls is Kernel \
            else cls(SimClock(), shards=3)
        log = []
        for index in range(12):
            kernel.at(1.0 + index * 0.5,
                      lambda i=index: log.append(i),
                      label=f"ev-{index}")
        return kernel, log

    @pytest.mark.parametrize("cls", [Kernel, ShardedKernel])
    def test_restore_rewinds_and_replays_identically(self, cls):
        kernel, log = self._loaded_kernel(cls)
        kernel.run(until=3.0)
        snap = kernel.snapshot()
        kernel.run()
        first_tail = list(kernel.event_log)
        first_log = list(log)

        kernel.restore(snap)
        del log[:]
        assert kernel.clock.now == snap.now
        kernel.run(until=3.0)  # already drained below 3.0: no-op
        kernel.run()
        assert list(kernel.event_log) == first_tail
        # actions re-ran from the checkpoint on
        assert log == [i for i in first_log if 1.0 + i * 0.5 > 3.0]

    def test_restore_truncates_the_event_log(self):
        kernel, __ = self._loaded_kernel(Kernel)
        kernel.run(until=2.0)
        snap = kernel.snapshot()
        logged = len(kernel.event_log)
        kernel.run()
        assert len(kernel.event_log) > logged
        kernel.restore(snap)
        assert len(kernel.event_log) == logged

    def test_snapshot_refuses_wheel_kernels(self):
        kernel = Kernel(SimClock())  # wheel on: far future entries
        kernel.at(1_000.0, lambda: None)
        with pytest.raises(KernelError, match="wheel"):
            kernel.snapshot()

    def test_inject_accepts_past_instants(self):
        """Straggler deliveries file below the local clock; heap
        order, not the clock, decides execution order."""
        kernel = Kernel(SimClock(), wheel=False)
        kernel.at(5.0, lambda: None, label="late")
        kernel.run()
        assert kernel.clock.now == 5.0
        kernel.inject(2.0, 0, 99, lambda: None, label="straggler")
        kernel.run()
        assert kernel.event_log[-1][3] == "straggler"

    def test_sharded_inject_files_on_the_named_stream(self):
        kernel = ShardedKernel(SimClock(), shards=3)
        kernel.inject(1.0, 0, 7, lambda: None, label="s2", shard=2)
        kernel.inject(1.0, 0, 3, lambda: None, label="s1", shard=1)
        assert [len(s) for s in kernel._streams] == [0, 1, 1]
        kernel.run()
        # merge order follows (time, priority, seq), not stream index
        assert [entry[3] for entry in kernel.event_log] == ["s1", "s2"]

    def test_filing_on_routes_scheduled_events(self):
        kernel = ShardedKernel(SimClock(), shards=2)
        with kernel.filing_on(1):
            kernel.at(1.0, lambda: None, label="routed")
        assert len(kernel._streams[1]) == 1
        assert len(kernel._streams[0]) == 0


class TestReplicatedScenario:
    def test_t7_merge_matches_single_process(self):
        config = canonical_scenarios()["t7_concurrent_team"]
        reference = record_scenario(config, shards=2)
        result = run_scenario_replicated(config, shards=2)
        assert result.events == reference.events
        assert result.final_time == reference.final_time

    def test_fewer_workers_than_shards_interleaves_ownership(self):
        config = canonical_scenarios()["t8_object_buffers"]
        reference = record_scenario(config, shards=4)
        result = run_scenario_replicated(config, shards=4, workers=2)
        assert result.stats["workers"] == 2
        assert result.events == reference.events

    def test_single_shard_is_rejected(self):
        config = canonical_scenarios()["t8_object_buffers"]
        with pytest.raises(KernelError, match="shards >= 2"):
            run_scenario_replicated(config, shards=1)


CRASH = ("ws-B", 15.0, 5.0)


class TestCrashInjectionUnderShards:
    """Satellite: ``schedule_crash`` with ``shards > 1`` — the crash
    lands on the crashed node's shard and changes nothing observable."""

    def test_reports_identical_across_shard_counts(self):
        __, reference = concurrent_delegation_scenario(
            ("A", "B", "C"), crash=CRASH, shards=1)
        for shards in (2, 4):
            __, report = concurrent_delegation_scenario(
                ("A", "B", "C"), crash=CRASH, shards=shards)
            assert report == reference, f"shards={shards}"

    def test_crash_events_file_on_the_owning_shard(self):
        captured = []

        def hook(kernel):
            kernel.shard_log = []
            captured.append(kernel)

        system, __ = concurrent_delegation_scenario(
            ("A", "B", "C"), crash=CRASH, shards=4, on_kernel=hook)
        kernel = captured[-1]
        owner = kernel.shard_of(CRASH[0])
        assert owner != 0  # ws-B round-robins off the server shard
        placed = {label: shard
                  for (*_, label), shard in zip(kernel.event_log,
                                                kernel.shard_log)}
        assert placed[f"crash:{CRASH[0]}"] == owner
        assert placed[f"restart:{CRASH[0]}"] == owner

    def test_crash_trace_replays_under_parallel_workers(self):
        """End to end: a scenario with a crash schedule records the
        identical stream on spawned workers as in-process."""
        raw = canonical_scenarios()["t7_concurrent_team"].as_tables()
        raw["crashes"]["schedule"] = [
            {"node": CRASH[0], "at": CRASH[1],
             "restart_after": CRASH[2]}]
        raw["kernel"]["shards"] = 2
        config = validate_scenario(raw)
        reference = record_scenario(config, parallel=False)
        parallel = record_scenario(config, parallel=True)
        assert parallel.events == reference.events
        assert any(label == f"crash:{CRASH[0]}"
                   for *_, label in parallel.events)
