"""DM forward recovery with an in-flight DOP at crash time.

The usual DM step executes a whole DOP atomically, so the in-flight
branch of :meth:`DesignManager.recover` only fires when the crash
interrupts an ongoing tool execution.  These tests construct that
situation explicitly: DOP_START is durably logged, work progressed
past a recovery point, and DOP_FINISH never made it to the log.
"""

from __future__ import annotations

from repro.bench.scenarios import make_vlsi_system, run_full_chip_design
from repro.repository.wal import LogRecordKind


def interrupted_dop(system, da):
    """Drive a DOP halfway as the DM would, then crash the workstation."""
    runtime = system.runtime(da.da_id)
    client_tm = runtime.client_tm
    dm = runtime.dm
    basis = system.repository.graph(da.da_id).leaves()[0].dov_id

    dop = client_tm.begin_dop(da.da_id, "chip_planner")
    dm.log.append(LogRecordKind.DOP_START, {
        "dop": dop.dop_id, "token": "0.s0", "tool": "chip_planner",
        "params": {}, "inputs": [basis],
    }, force=True)
    client_tm.checkout(dop, basis)
    dm.log.append(LogRecordKind.DOV_USED,
                  {"dop": dop.dop_id, "dov": basis}, force=True)
    client_tm.work(dop, 30.0)     # interval recovery point fires here
    client_tm.work(dop, 5.0)      # ... 5 minutes past the point
    system.crash_workstation(da.workstation)
    return dop, basis


class TestInFlightRecovery:
    def test_in_flight_dop_resumed_from_recovery_point(self):
        system = make_vlsi_system(("ws-1",), recovery_interval=30.0)
        da = run_full_chip_design(system)
        dm = system.runtime(da.da_id).dm
        dop, basis = interrupted_dop(system, da)

        reports = system.restart_workstation("ws-1")
        report = reports[da.da_id]
        resumed = report["in_flight_resumed"]
        assert resumed is not None
        assert resumed["dop"] == dop.dop_id
        assert resumed["tool"] == "chip_planner"
        # 30 of the 35 minutes survived (the interval recovery point)
        assert resumed["recovered_work"] == 30.0
        # the resumed DOP is active again on the client-TM
        live = system.runtime(da.da_id).client_tm.get_dop(dop.dop_id)
        assert live.context.work_done == 30.0
        assert live.input_dovs == [basis]
        assert dm.in_flight is live

    def test_in_flight_without_recovery_point_reports_total_loss(self):
        system = make_vlsi_system(("ws-1",), recovery_interval=0.0)
        # disable the post-checkout point too: nothing persists
        da = run_full_chip_design(system)
        runtime = system.runtime(da.da_id)
        runtime.client_tm.recovery.policy.after_checkout = False
        dm = runtime.dm
        dop = runtime.client_tm.begin_dop(da.da_id, "chip_planner")
        dm.log.append(LogRecordKind.DOP_START, {
            "dop": dop.dop_id, "token": "0.s0", "tool": "chip_planner",
            "params": {}, "inputs": [],
        }, force=True)
        runtime.client_tm.work(dop, 25.0)
        system.crash_workstation("ws-1")
        reports = system.restart_workstation("ws-1")
        resumed = reports[da.da_id]["in_flight_resumed"]
        assert resumed is not None
        assert resumed["recovered_work"] == 0.0
        assert resumed["point_time"] is None

    def test_committed_history_survives_alongside(self):
        system = make_vlsi_system(("ws-1",), recovery_interval=30.0)
        da = run_full_chip_design(system)
        dm = system.runtime(da.da_id).dm
        committed_before = dm.executed_dops
        interrupted_dop(system, da)
        reports = system.restart_workstation("ws-1")
        assert reports[da.da_id]["executed_dops"] == committed_before
        assert dm.executed_dops == committed_before
