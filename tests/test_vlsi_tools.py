"""Unit tests for the seven VLSI design tools and the DOT hierarchy."""

from __future__ import annotations

import pytest

from repro.dc.design_manager import ToolRegistry
from repro.te.context import DopContext
from repro.util.errors import WorkflowError
from repro.vlsi.tools import (
    TOOL_DURATIONS,
    TOOL_NUMBERS,
    cell_synthesis,
    chip_assembly,
    chip_planner_tool,
    design_rule_check,
    pad_frame_editor,
    register_vlsi_tools,
    repartitioning,
    shape_function_generator,
    structure_synthesis,
    vlsi_dots,
)


def behavior_context(operations=4) -> DopContext:
    return DopContext(data={
        "cell": "cud", "level": "chip",
        "behavior": {"operations": [f"op-{i}" for i in range(operations)]},
    })


def planned_context() -> DopContext:
    """A context carried through tools 1, 3, 4, 5."""
    context = behavior_context()
    structure_synthesis(context, {"seed": 1})
    shape_function_generator(context, {})
    pad_frame_editor(context, {"max_width": 60.0, "max_height": 60.0})
    chip_planner_tool(context, {"iterations": 2, "seed": 1})
    return context


class TestDots:
    def test_part_of_chain(self):
        dots = vlsi_dots()
        assert dots["Module"].is_part_of(dots["Chip"])
        assert dots["StandardCell"].is_part_of(dots["Chip"])
        assert not dots["Chip"].is_part_of(dots["Module"])

    def test_negative_dimensions_rejected(self):
        dots = vlsi_dots()
        problems = dots["Chip"].validate({"cell": "c", "level": "chip",
                                          "area": -1.0})
        assert problems

    def test_valid_payload_accepted(self):
        dots = vlsi_dots()
        assert dots["Chip"].validate({"cell": "c", "level": "chip",
                                      "area": 5.0}) == []


class TestStructureSynthesis:
    def test_one_subcell_per_operation(self):
        context = behavior_context(operations=5)
        structure_synthesis(context, {"seed": 0})
        structure = context.data["structure"]
        assert len(structure["subcells"]) == 5
        assert structure["netlist"]["cells"] == structure["subcells"]

    def test_requires_behavior(self):
        with pytest.raises(WorkflowError):
            structure_synthesis(DopContext(data={"cell": "c"}), {})

    def test_seed_determinism(self):
        a = behavior_context()
        b = behavior_context()
        structure_synthesis(a, {"seed": 7})
        structure_synthesis(b, {"seed": 7})
        assert a.data["structure"] == b.data["structure"]


class TestRepartitioning:
    def test_balanced_groups(self):
        context = behavior_context(operations=6)
        structure_synthesis(context, {"seed": 0})
        repartitioning(context, {"groups": 3})
        partitions = context.data["structure"]["partitions"]
        assert len(partitions) == 3
        sizes = [len(p) for p in partitions]
        assert max(sizes) - min(sizes) <= 1
        flattened = [c for p in partitions for c in p]
        assert sorted(flattened) == sorted(
            context.data["structure"]["subcells"])

    def test_requires_structure(self):
        with pytest.raises(WorkflowError):
            repartitioning(DopContext(), {})


class TestShapeFunctionGenerator:
    def test_staircase_per_subcell(self):
        context = behavior_context()
        structure_synthesis(context, {"seed": 0})
        shape_function_generator(context, {"default_area": 9.0})
        functions = context.data["shape_functions"]
        assert set(functions) == set(
            context.data["structure"]["subcells"])
        for raw in functions.values():
            assert raw["shapes"]

    def test_requires_structure(self):
        with pytest.raises(WorkflowError):
            shape_function_generator(DopContext(), {})


class TestPadFrameEditor:
    def test_interface_with_pins(self):
        context = behavior_context()
        pad_frame_editor(context, {"max_width": 30.0, "max_height": 20.0,
                                   "pins": 8})
        interface = context.data["interface"]
        assert interface["max_width"] == 30.0
        assert len(interface["pins"]) == 8
        edges = {p["edge"] for p in interface["pins"]}
        assert edges == {"north", "east", "south", "west"}


class TestChipPlanner:
    def test_produces_floorplan_and_dimensions(self):
        context = planned_context()
        assert "floorplan" in context.data
        assert context.data["width"] > 0
        assert context.data["area"] == pytest.approx(
            context.data["width"] * context.data["height"], rel=1e-3)

    def test_missing_inputs_rejected(self):
        context = behavior_context()
        with pytest.raises(WorkflowError):
            chip_planner_tool(context, {})  # no structure
        structure_synthesis(context, {})
        with pytest.raises(WorkflowError):
            chip_planner_tool(context, {})  # no shape functions
        shape_function_generator(context, {})
        with pytest.raises(WorkflowError):
            chip_planner_tool(context, {})  # no interface


class TestCellSynthesis:
    def test_layout_from_area(self):
        context = DopContext(data={"cell": "std", "level": "standard_cell",
                                   "area": 16.0})
        cell_synthesis(context, {"aspect": 4.0})
        layout = context.data["layout"]
        assert layout["kind"] == "standard-cell"
        assert context.data["width"] == pytest.approx(8.0)
        assert context.data["height"] == pytest.approx(2.0)

    def test_default_area_param(self):
        context = DopContext(data={"cell": "std", "level": "std"})
        cell_synthesis(context, {"area": 25.0})
        assert context.data["area"] == 25.0


class TestChipAssembly:
    def test_assembles_valid_floorplan(self):
        context = planned_context()
        chip_assembly(context, {})
        layout = context.data["layout"]
        assert layout["kind"] == "chip"
        assert len(layout["rects"]) == len(
            context.data["structure"]["subcells"])
        assert 0 < layout["utilisation"] <= 1.0

    def test_requires_floorplan(self):
        with pytest.raises(WorkflowError):
            chip_assembly(behavior_context(), {})

    def test_rejects_invalid_floorplan(self):
        context = planned_context()
        # corrupt the floorplan: force an overlap
        plan = context.data["floorplan"]
        names = list(plan["placements"])
        plan["placements"][names[0]] = plan["placements"][names[1]]
        with pytest.raises(WorkflowError):
            chip_assembly(context, {})


class TestDesignRuleCheck:
    def test_passes_valid_plan(self):
        context = planned_context()
        assert design_rule_check(context.data)

    def test_fails_without_floorplan(self):
        assert not design_rule_check({"cell": "c"})

    def test_utilisation_threshold(self):
        context = planned_context()
        assert not design_rule_check(context.data, min_utilisation=1.01)


class TestRegistration:
    def test_all_seven_registered(self):
        registry = ToolRegistry()
        register_vlsi_tools(registry)
        assert set(TOOL_NUMBERS) <= set(registry.names())
        assert len(TOOL_NUMBERS) == 7
        assert sorted(TOOL_NUMBERS.values()) == list(range(1, 8))

    def test_durations_registered(self):
        registry = ToolRegistry()
        register_vlsi_tools(registry)
        for tool, duration in TOOL_DURATIONS.items():
            assert registry.duration(tool) == duration
