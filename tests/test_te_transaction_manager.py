"""Integration tests for the TE level: DOP lifecycle via client/server TM."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
    range_constraint,
)
from repro.sim.clock import SimClock
from repro.te.dop import DopState
from repro.te.locks import LockManager, LockMode
from repro.te.recovery import RecoveryPointPolicy
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.util.errors import (
    LockConflictError,
    RecoveryError,
    ScopeViolationError,
    TransactionError,
    TransactionStateError,
)
from repro.util.ids import IdGenerator


@pytest.fixture
def rig():
    clock = SimClock()
    network = Network(clock)
    network.add_server()
    workstation = network.add_workstation("ws-1")
    rpc = TransactionalRpc(network)
    ids = IdGenerator()
    repo = DesignDataRepository(ids)
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)],
        constraints=[range_constraint("area", lo=0.0)]))
    repo.create_graph("da-1")
    repo.create_graph("da-2")
    locks = LockManager()
    server_tm = ServerTM(repo, locks, network, clock=clock)
    register_server_endpoints(rpc, server_tm)
    client_tm = ClientTM("ws-1", server_tm, rpc, clock, ids,
                         policy=RecoveryPointPolicy(interval=30.0))
    dov0 = repo.checkin("da-1", "Cell", {"area": 100.0})
    return {
        "clock": clock, "network": network, "workstation": workstation,
        "repo": repo, "locks": locks, "server_tm": server_tm,
        "client_tm": client_tm, "dov0": dov0,
    }


class TestDopLifecycle:
    def test_full_cycle(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        assert dop.state is DopState.ACTIVE
        client.checkout(dop, rig["dov0"].dov_id)
        client.work(dop, 10.0,
                    mutate=lambda c: c.data.update(area=50.0))
        result = client.checkin(dop, "Cell")
        assert result.success
        client.commit_dop(dop, result)
        assert dop.state is DopState.COMMITTED
        graph = rig["repo"].graph("da-1")
        assert result.dov.dov_id in graph
        assert graph.is_ancestor(rig["dov0"].dov_id, result.dov.dov_id)

    def test_work_advances_clock(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.work(dop, 42.0)
        assert rig["clock"].now == 42.0
        assert dop.context.work_done == 42.0

    def test_checkin_failure_reported_not_raised(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.work(dop, 1.0,
                    mutate=lambda c: c.data.update(area=-5.0))
        result = client.checkin(dop, "Cell")
        assert not result.success
        assert "range(area)" in result.reason
        # the paper: designer/DM decides -> abort here
        client.abort_dop(dop, result.reason)
        assert dop.state is DopState.ABORTED
        assert len(rig["repo"].graph("da-1")) == 1  # nothing persisted

    def test_state_guards(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.commit_dop(dop)
        with pytest.raises(TransactionStateError):
            client.work(dop, 1.0)
        with pytest.raises(TransactionStateError):
            client.checkout(dop, rig["dov0"].dov_id)

    def test_dm_callback_on_finish(self, rig):
        client = rig["client_tm"]
        seen = []
        client.on_dop_finished = lambda dop, res: seen.append(
            (dop.dop_id, res.success))
        dop = client.begin_dop("da-1", "tool")
        client.commit_dop(dop)
        assert seen == [(dop.dop_id, True)]


class TestCheckoutSemantics:
    def test_scope_enforced(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-2", "tool")
        with pytest.raises(ScopeViolationError):
            client.checkout(dop, rig["dov0"].dov_id)  # da-1's DOV

    def test_derivation_lock_blocks_other_da(self, rig):
        client = rig["client_tm"]
        server = rig["server_tm"]
        # pretend the CM authorised da-2 to see the DOV (usage rel.)
        server.scope_check = lambda da, dov: True
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id, derivation_lock=True)
        # even with scope access, the derivation lock blocks checkout
        with pytest.raises(LockConflictError):
            server.checkout("da-2", "dop-x", rig["dov0"].dov_id)

    def test_same_da_can_checkout_again(self, rig):
        client = rig["client_tm"]
        dop_a = client.begin_dop("da-1", "tool")
        client.checkout(dop_a, rig["dov0"].dov_id, derivation_lock=True)
        dop_b = client.begin_dop("da-1", "tool")
        client.checkout(dop_b, rig["dov0"].dov_id)  # same DA: allowed

    def test_derivation_locks_released_at_end_of_dop(self, rig):
        client = rig["client_tm"]
        server = rig["server_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id, derivation_lock=True)
        client.commit_dop(dop)
        # now another DA's checkout is admitted past the derivation check
        # (scope still fails, which proves the lock went away first)
        with pytest.raises(ScopeViolationError):
            server.checkout("da-2", "dop-x", rig["dov0"].dov_id)
        assert rig["locks"].holders(rig["dov0"].dov_id,
                                    LockMode.DERIVATION) == []

    def test_recovery_point_after_checkout(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        assert client.recovery.has_point(dop.dop_id)

    def test_checkout_merges_data_into_context(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        assert dop.context.data["area"] == 100.0
        assert dop.input_dovs == [rig["dov0"].dov_id]


class TestSuspendResume:
    def test_resume_restores_suspend_state(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.work(dop, 10.0, mutate=lambda c: c.data.update(x=1))
        client.suspend(dop)
        assert dop.state is DopState.SUSPENDED
        with pytest.raises(TransactionStateError):
            client.work(dop, 1.0)
        client.resume(dop)
        assert dop.state is DopState.ACTIVE
        assert dop.context.data["x"] == 1
        assert dop.context.work_done == 10.0


class TestSavepoints:
    def test_save_restore_through_client_tm(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.work(dop, 5.0, mutate=lambda c: c.data.update(v=1))
        client.save(dop, "sp1")
        client.work(dop, 5.0, mutate=lambda c: c.data.update(v=2))
        client.restore(dop, "sp1")
        assert dop.context.data["v"] == 1

    def test_savepoints_cleared_at_commit(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.save(dop, "sp1")
        client.commit_dop(dop)
        assert len(dop.savepoints) == 0
        assert not client.recovery.has_point(dop.dop_id)


class TestWorkstationCrash:
    def test_recover_from_interval_point(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.work(dop, 30.0)   # interval point at 30
        client.work(dop, 20.0)   # 20 min past the point
        rig["network"].crash_node("ws-1")
        assert client.active_dops() == []
        rig["network"].restart_node("ws-1")
        recovered, __ = client.recover_dop(dop.dop_id, "da-1", "tool")
        assert recovered.context.work_done == 30.0  # 20 min lost
        assert recovered.input_dovs == [rig["dov0"].dov_id]
        assert recovered.state is DopState.ACTIVE

    def test_recover_without_point_fails(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")  # no checkout, no work
        rig["network"].crash_node("ws-1")
        rig["network"].restart_node("ws-1")
        with pytest.raises(RecoveryError):
            client.recover_dop(dop.dop_id, "da-1", "tool")

    def test_get_dop_after_crash_raises(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        rig["network"].crash_node("ws-1")
        rig["network"].restart_node("ws-1")
        with pytest.raises(TransactionError):
            client.get_dop(dop.dop_id)


class TestCheckinTwoPhase:
    def test_checkin_uses_2pc(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.work(dop, 1.0, mutate=lambda c: c.data.update(area=1.0))
        result = client.checkin(dop, "Cell")
        assert result.outcome is not None
        assert result.outcome.committed
        assert result.outcome.forced_log_writes >= 2

    def test_failed_checkin_aborts_2pc(self, rig):
        client = rig["client_tm"]
        dop = client.begin_dop("da-1", "tool")
        client.work(dop, 1.0, mutate=lambda c: c.data.update(area=-1.0))
        result = client.checkin(dop, "Cell")
        assert not result.outcome.committed
        assert rig["repo"].store.staged_ids() == set()
