"""Shared fixtures for the CONCORD test suite."""

from __future__ import annotations

import pytest

from repro.core.system import ConcordSystem
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
    range_constraint,
)
from repro.util.ids import IdGenerator


@pytest.fixture
def cell_dot() -> DesignObjectType:
    """A simple DOT with one optional numeric attribute + constraint."""
    return DesignObjectType("Cell", attributes=[
        AttributeDef("name", AttributeKind.STRING, required=False),
        AttributeDef("area", AttributeKind.FLOAT, required=False),
    ], constraints=[range_constraint("area", lo=0.0)])


@pytest.fixture
def repository(cell_dot) -> DesignDataRepository:
    """A repository with the Cell DOT registered and a graph for da-1."""
    repo = DesignDataRepository(IdGenerator())
    repo.register_dot(cell_dot)
    repo.create_graph("da-1")
    return repo


@pytest.fixture
def system(cell_dot) -> ConcordSystem:
    """A minimal ConcordSystem with one workstation and a no-op tool."""
    sys_ = ConcordSystem()
    sys_.add_workstation("ws-1")
    sys_.tools.register(
        "halve", lambda ctx, p: ctx.data.update(
            area=ctx.data.get("area", 200.0) * 0.5),
        duration=10.0)
    return sys_
