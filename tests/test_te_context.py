"""Unit tests for DOP contexts and savepoint stacks."""

from __future__ import annotations

import pytest

from repro.te.context import DopContext, SavepointStack
from repro.util.errors import RecoveryError


class TestDopContext:
    def test_snapshot_roundtrip(self):
        context = DopContext(data={"a": [1]}, tool_state={"phase": 1},
                             checked_out=["dov-1"], work_done=5.0)
        snap = context.snapshot()
        back = DopContext.from_snapshot(snap)
        assert back.data == {"a": [1]}
        assert back.tool_state == {"phase": 1}
        assert back.checked_out == ["dov-1"]
        assert back.work_done == 5.0

    def test_snapshot_is_isolated(self):
        context = DopContext(data={"a": [1]})
        snap = context.snapshot()
        context.data["a"].append(2)
        assert snap["data"]["a"] == [1]

    def test_from_snapshot_is_isolated(self):
        snap = {"data": {"a": [1]}, "tool_state": {},
                "checked_out": [], "work_done": 0.0}
        context = DopContext.from_snapshot(snap)
        context.data["a"].append(2)
        assert snap["data"]["a"] == [1]


class TestSavepointStack:
    def test_save_restore_latest(self):
        stack = SavepointStack()
        context = DopContext(data={"v": 1})
        stack.save("one", context)
        context.data["v"] = 2
        restored = stack.restore()
        assert restored.data["v"] == 1

    def test_restore_by_name_discards_later(self):
        stack = SavepointStack()
        context = DopContext(data={"v": 1})
        stack.save("one", context)
        context.data["v"] = 2
        stack.save("two", context)
        restored = stack.restore("one")
        assert restored.data["v"] == 1
        assert stack.names() == ["one"]

    def test_restore_keeps_the_restored_point(self):
        stack = SavepointStack()
        stack.save("one", DopContext(data={"v": 1}))
        stack.restore("one")
        restored_again = stack.restore("one")
        assert restored_again.data["v"] == 1

    def test_duplicate_name_rejected(self):
        stack = SavepointStack()
        stack.save("one", DopContext())
        with pytest.raises(RecoveryError):
            stack.save("one", DopContext())

    def test_restore_unknown_raises(self):
        stack = SavepointStack()
        stack.save("one", DopContext())
        with pytest.raises(RecoveryError):
            stack.restore("missing")

    def test_restore_empty_raises(self):
        with pytest.raises(RecoveryError):
            SavepointStack().restore()

    def test_clear(self):
        stack = SavepointStack()
        stack.save("one", DopContext())
        stack.clear()
        assert len(stack) == 0

    def test_snapshot_roundtrip(self):
        stack = SavepointStack()
        stack.save("a", DopContext(data={"v": 1}))
        stack.save("b", DopContext(data={"v": 2}))
        back = SavepointStack.from_snapshot(stack.snapshot())
        assert back.names() == ["a", "b"]
        assert back.restore("a").data["v"] == 1

    def test_wipe_out_semantics(self):
        """Restoring wipes out everything changed after the savepoint."""
        stack = SavepointStack()
        context = DopContext(data={"placed": ["a"]})
        stack.save("before-experiment", context)
        context.data["placed"] += ["b", "c"]
        context.tool_state["dirty"] = True
        restored = stack.restore("before-experiment")
        assert restored.data["placed"] == ["a"]
        assert "dirty" not in restored.tool_state
