"""Unit tests for VLSI cells, netlists and shape functions."""

from __future__ import annotations

import pytest

from repro.util.rng import SeededRng
from repro.vlsi.cells import (
    CellLevel,
    sample_hierarchy,
    synthetic_hierarchy,
)
from repro.vlsi.netlist import Net, NetList, synthetic_netlist
from repro.vlsi.shapes import Shape, ShapeFunction, shapes_for_area


class TestCells:
    def test_sample_hierarchy_levels(self):
        hierarchy = sample_hierarchy()
        assert hierarchy.root.level is CellLevel.CHIP
        assert hierarchy.depth() == 4
        assert len(hierarchy.cells(CellLevel.MODULE)) == 2
        assert len(hierarchy.cells(CellLevel.STANDARD_CELL)) == 10

    def test_area_demand_aggregates(self):
        hierarchy = sample_hierarchy()
        chip_area = hierarchy.root.area_demand()
        leaf_area = sum(c.base_area for c in
                        hierarchy.cells(CellLevel.STANDARD_CELL))
        assert chip_area == pytest.approx(leaf_area)

    def test_find(self):
        hierarchy = sample_hierarchy()
        assert hierarchy.root.find("alu") is not None
        assert hierarchy.root.find("nope") is None

    def test_synthetic_hierarchy_shape(self):
        hierarchy = synthetic_hierarchy(SeededRng(1), modules=2,
                                        blocks_per_module=3,
                                        cells_per_block=4)
        assert len(hierarchy.cells(CellLevel.MODULE)) == 2
        assert len(hierarchy.cells(CellLevel.BLOCK)) == 6
        assert len(hierarchy.cells(CellLevel.STANDARD_CELL)) == 24

    def test_synthetic_deterministic(self):
        a = synthetic_hierarchy(SeededRng(5))
        b = synthetic_hierarchy(SeededRng(5))
        assert [c.base_area for c in a.cells()] == \
               [c.base_area for c in b.cells()]

    def test_level_below(self):
        assert CellLevel.CHIP.below is CellLevel.MODULE
        assert CellLevel.STANDARD_CELL.below is None

    def test_duplicate_names_rejected(self):
        from repro.vlsi.cells import Cell, CellHierarchy
        dup = Cell("x", CellLevel.CHIP,
                   [Cell("x", CellLevel.MODULE)])
        with pytest.raises(ValueError):
            CellHierarchy(dup)


class TestNetList:
    def test_cut_size(self):
        netlist = NetList(cells=["a", "b", "c"], nets=[
            Net("n1", ("a", "b")), Net("n2", ("b", "c")),
            Net("n3", ("a", "c"))])
        assert netlist.cut_size({"a"}, {"b", "c"}) == 2
        assert netlist.cut_size({"a", "b", "c"}, set()) == 0

    def test_connectivity_and_degree(self):
        netlist = NetList(cells=["a", "b", "c"], nets=[
            Net("n1", ("a", "b")), Net("n2", ("a", "b", "c"))])
        assert netlist.connectivity("a", "b") == 2
        assert netlist.connectivity("b", "c") == 1
        assert netlist.degree("a") == 2

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            NetList(cells=["a"], nets=[Net("n", ("a", "ghost"))])

    def test_dict_roundtrip(self):
        netlist = NetList(cells=["a", "b"], nets=[Net("n1", ("a", "b"))])
        back = NetList.from_dict(netlist.to_dict())
        assert back.cells == ["a", "b"]
        assert back.nets[0].cells == ("a", "b")

    def test_synthetic_netlist_properties(self):
        cells = [f"c{i}" for i in range(10)]
        netlist = synthetic_netlist(cells, SeededRng(3))
        assert netlist.cells == cells
        for net in netlist.nets:
            assert len(net.cells) >= 2
            assert set(net.cells) <= set(cells)

    def test_synthetic_single_cell(self):
        netlist = synthetic_netlist(["only"], SeededRng(0))
        assert netlist.nets == []


class TestShapes:
    def test_area_and_rotation(self):
        shape = Shape(4.0, 2.0)
        assert shape.area == 8.0
        assert shape.aspect == 2.0
        assert shape.rotated() == Shape(2.0, 4.0)

    def test_dominated_shapes_pruned(self):
        function = ShapeFunction("c", [
            Shape(2.0, 5.0), Shape(3.0, 6.0),   # (3,6) dominated by (2,5)
            Shape(5.0, 2.0)])
        assert Shape(3.0, 6.0) not in function.shapes
        assert len(function.shapes) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ShapeFunction("c", [])

    def test_best_for_bounds(self):
        function = ShapeFunction("c", [Shape(2.0, 8.0), Shape(4.0, 4.0),
                                       Shape(8.0, 2.0)])
        best = function.best_for(max_width=5.0, max_height=5.0)
        assert best == Shape(4.0, 4.0)
        assert function.best_for(max_width=1.0, max_height=1.0) is None

    def test_min_area_and_narrowest(self):
        function = shapes_for_area("c", 16.0)
        assert function.min_area() == pytest.approx(16.0, rel=1e-3)
        assert function.narrowest().width <= min(
            s.width for s in function.shapes) + 1e-9

    def test_beside_adds_widths(self):
        a = ShapeFunction("a", [Shape(2.0, 3.0)])
        b = ShapeFunction("b", [Shape(4.0, 1.0)])
        combined = a.beside(b)
        assert combined.shapes == [Shape(6.0, 3.0)]

    def test_stacked_adds_heights(self):
        a = ShapeFunction("a", [Shape(2.0, 3.0)])
        b = ShapeFunction("b", [Shape(4.0, 1.0)])
        combined = a.stacked(b)
        assert combined.shapes == [Shape(4.0, 4.0)]

    def test_shapes_for_area_aspects(self):
        function = shapes_for_area("c", 100.0, aspects=(1.0, 4.0))
        areas = [s.area for s in function.shapes]
        for area in areas:
            assert area == pytest.approx(100.0, rel=1e-2)

    def test_dict_roundtrip(self):
        function = shapes_for_area("c", 9.0)
        back = ShapeFunction.from_dict(function.to_dict())
        assert back.cell == "c"
        assert back.shapes == function.shapes
