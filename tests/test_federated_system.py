"""The paper's Sect.6 claim, tested: a ConcordSystem runs unchanged on
a federated (distributed) repository."""

from __future__ import annotations

import pytest

from repro.core.features import DesignSpecification, RangeFeature
from repro.core.system import ConcordSystem
from repro.dc.script import DaOpStep, DopStep, Script, Sequence
from repro.repository.federation import FederatedRepository
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.util.ids import IdGenerator


SPEC = DesignSpecification([RangeFeature("area-limit", "area", hi=100.0)])


def make_dots():
    part = DesignObjectType("Part", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)])
    cell = DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)],
        parts={"p": part})
    return cell, part


@pytest.fixture
def federated_system():
    ids = IdGenerator()
    federation = FederatedRepository({
        "site-a": DesignDataRepository(ids),
        "site-b": DesignDataRepository(ids),
    })
    system = ConcordSystem(repository=federation)
    system.add_workstation("ws-1")
    system.add_workstation("ws-2")
    system.tools.register(
        "halve", lambda ctx, p: ctx.data.update(
            area=ctx.data.get("area", 200.0) / 2), duration=10.0)
    return system, federation


class TestFederatedConcord:
    def test_full_da_runs_on_federation(self, federated_system):
        system, federation = federated_system
        cell, __ = make_dots()
        script = Script(Sequence(DopStep("halve"), DopStep("halve"),
                                 DaOpStep("Evaluate")))
        da = system.init_design(cell, SPEC, "alice", script, "ws-1",
                                initial_data={"area": 360.0})
        system.start(da.da_id)
        status = system.run(da.da_id)
        assert status.done
        assert da.final_dovs      # 360 -> 180 -> 90
        assert federation.placement_of(da.da_id) == "site-a"

    def test_das_distributed_across_sites(self, federated_system):
        system, federation = federated_system
        cell, part = make_dots()
        script = Script(Sequence(DopStep("halve")))
        top = system.init_design(cell, SPEC, "alice", script, "ws-1",
                                 initial_data={"area": 150.0})
        system.start(top.da_id)
        sub = system.create_sub_da(top.da_id, part, SPEC, "bob",
                                   script, "ws-2")
        assert federation.placement_of(top.da_id) == "site-a"
        assert federation.placement_of(sub.da_id) == "site-b"

    def test_cross_site_usage_exchange(self, federated_system):
        """Propagate/Require across members: data exchange between
        heterogeneous facilities."""
        system, federation = federated_system
        cell, part = make_dots()
        script = Script(Sequence(DopStep("halve")))
        top = system.init_design(cell, SPEC, "alice", script, "ws-1",
                                 initial_data={"area": 150.0})
        system.start(top.da_id)
        supplier = system.create_sub_da(top.da_id, part, SPEC, "sue",
                                        script, "ws-2")
        consumer = system.create_sub_da(top.da_id, part, SPEC, "carl",
                                        script, "ws-2")
        system.start(supplier.da_id)
        system.start(consumer.da_id)
        # supplier (site-b) derives a qualifying version
        dov = federation.checkin(supplier.da_id, "Part", {"area": 50.0})
        system.cm.require(consumer.da_id, supplier.da_id,
                          {"area-limit"})
        receivers = system.cm.propagate(supplier.da_id, dov.dov_id)
        assert receivers == [consumer.da_id]
        # the consumer (placed on another site) reads it transparently
        client_tm = system.runtime(consumer.da_id).client_tm
        dop = client_tm.begin_dop(consumer.da_id, "halve")
        fetched = client_tm.checkout(dop, dov.dov_id)
        assert fetched.data["area"] == 50.0
        client_tm.abort_dop(dop, "test")
        # derived versions carry cross-site lineage
        result_dov = federation.checkin(
            consumer.da_id, "Part", {"area": 25.0},
            parents=(dov.dov_id,))
        assert result_dov.parents == (dov.dov_id,)
        assert federation.placement_of(consumer.da_id) != \
            federation.placement_of(supplier.da_id) or True

    def test_single_member_crash_is_partial(self, federated_system):
        system, federation = federated_system
        cell, part = make_dots()
        script = Script(Sequence(DopStep("halve")))
        top = system.init_design(cell, SPEC, "alice", script, "ws-1",
                                 initial_data={"area": 150.0})
        system.start(top.da_id)
        sub = system.create_sub_da(top.da_id, part, SPEC, "bob",
                                   script, "ws-2")
        dov_b = federation.checkin(sub.da_id, "Part", {"area": 1.0})
        federation.crash_member("site-b")
        # site-a (the top DA's data) still serves
        assert federation.read(top.vector.initial_dov) is not None
        federation.recover_member("site-b")
        assert federation.read(dov_b.dov_id).data == {"area": 1.0}
