"""Unit tests for the design plane, PLAYOUT constraints and Fig.6 scripts."""

from __future__ import annotations

from repro.vlsi.cells import CellLevel, sample_hierarchy
from repro.vlsi.methodology import (
    DESIGN_PLANE_ARROWS,
    DesignDomain,
    alternative_paths_script,
    chip_design_script,
    chip_planning_script,
    full_design_script,
    playout_constraints,
    traversal_matrix,
    traverse_design_plane,
)
from repro.vlsi.tools import TOOL_NUMBERS


class TestDesignPlane:
    def test_seven_arrows_with_paper_numbers(self):
        assert len(DESIGN_PLANE_ARROWS) == 7
        numbers = {a.tool: a.number for a in DESIGN_PLANE_ARROWS}
        assert numbers == TOOL_NUMBERS

    def test_traversal_starts_and_ends_as_paper(self):
        steps = traverse_design_plane(sample_hierarchy())
        assert steps[0].tool == "structure_synthesis"
        assert steps[0].source is DesignDomain.BEHAVIOR
        assert steps[-1].tool == "chip_assembly"
        assert steps[-1].target is DesignDomain.MASK_LAYOUT

    def test_chip_planner_applied_per_inner_cell(self):
        hierarchy = sample_hierarchy()
        steps = traverse_design_plane(hierarchy)
        planner_cells = {s.cell for s in steps
                         if s.tool == "chip_planner"}
        inner = {c.name for c in hierarchy.cells()
                 if c.children}
        assert planner_cells == inner

    def test_cell_synthesis_only_standard_cells(self):
        hierarchy = sample_hierarchy()
        steps = traverse_design_plane(hierarchy)
        for step in steps:
            if step.tool == "cell_synthesis":
                assert step.level is CellLevel.STANDARD_CELL

    def test_shape_estimation_before_planning(self):
        steps = traverse_design_plane(sample_hierarchy())
        order = [s.tool for s in steps]
        last_shape = max(i for i, t in enumerate(order)
                         if t == "shape_function_generator")
        first_plan = min(i for i, t in enumerate(order)
                         if t == "chip_planner")
        assert last_shape < first_plan

    def test_matrix_totals(self):
        hierarchy = sample_hierarchy()
        steps = traverse_design_plane(hierarchy)
        matrix = traversal_matrix(steps)
        assert sum(matrix.values()) == len(steps)

    def test_traversal_order_monotone(self):
        steps = traverse_design_plane(sample_hierarchy())
        assert [s.order for s in steps] == list(range(1, len(steps) + 1))


class TestPlayoutConstraints:
    def test_full_traversal_is_legal(self):
        constraints = playout_constraints()
        steps = traverse_design_plane(sample_hierarchy())
        assert constraints.violations([s.tool for s in steps]) == []

    def test_assembly_first_is_illegal(self):
        constraints = playout_constraints()
        assert constraints.violations(["chip_assembly"]) != []

    def test_pad_frame_must_be_followed_by_planner(self):
        constraints = playout_constraints()
        bad = ["structure_synthesis", "shape_function_generator",
               "pad_frame_editor"]
        assert any("followed" in v for v in constraints.violations(bad))


class TestFig6Scripts:
    def test_fig6a_statically_valid(self):
        constraints = playout_constraints()
        assert constraints.validate_script(chip_design_script()) == []

    def test_fig6b_three_paths(self):
        sequences = alternative_paths_script().sequences()
        assert len(sequences) == 3
        assert all(s[0] == "shape_function_generator" for s in sequences)
        assert all(s[-1] == "chip_planner" for s in sequences)

    def test_fig6b_valid_after_synthesis(self):
        constraints = playout_constraints()
        problems = constraints.validate_script(
            alternative_paths_script(),
            history=["structure_synthesis"])
        assert problems == []

    def test_full_design_script_valid(self):
        constraints = playout_constraints()
        assert constraints.validate_script(full_design_script()) == []

    def test_chip_planning_script_iterates(self):
        sequences = chip_planning_script().sequences(max_iterations=3)
        lengths = {len(s) for s in sequences}
        assert lengths == {1, 2, 3}  # 1..3 planner rounds
