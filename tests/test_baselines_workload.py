"""Tests for the baseline processing models and the team simulator."""

from __future__ import annotations

import pytest

from repro.baselines.models import (
    CrashRecovery,
    VisibilityPolicy,
    WriteConcurrency,
    all_models,
    concord_model,
    contracts_model,
    flat_acid_model,
    nested_model,
    saga_model,
)
from repro.workload.generator import team_workload
from repro.workload.simulator import (
    TeamSimulator,
    crash_lost_work,
    work_position,
)


class TestModelDefinitions:
    def test_five_models(self):
        names = [m.name for m in all_models()]
        assert names == ["concord", "contracts", "saga", "nested",
                         "flat_acid"]

    def test_concord_policies(self):
        model = concord_model()
        assert model.visibility is VisibilityPolicy.ON_PROPAGATE
        assert model.write_concurrency \
            is WriteConcurrency.VERSION_DERIVATION
        assert model.crash_recovery is CrashRecovery.RECOVERY_POINT
        assert model.recovery_point_interval == 30.0

    def test_flat_policies(self):
        model = flat_acid_model()
        assert model.visibility is VisibilityPolicy.ON_SESSION_COMMIT
        assert model.crash_recovery is CrashRecovery.RESTART_SESSION
        assert model.rework_probability == 0.0

    def test_saga_has_rework_risk(self):
        assert saga_model().rework_probability > \
            concord_model().rework_probability


class TestWorkloadGenerator:
    def test_deterministic(self):
        a = team_workload(4, seed=3)
        b = team_workload(4, seed=3)
        assert [s.step_durations for s in a.sessions] == \
               [s.step_durations for s in b.sessions]

    def test_dependencies_chain(self):
        workload = team_workload(4, steps_per_session=4)
        assert workload.sessions[0].dependency is None
        for i in (1, 2, 3):
            dep = workload.sessions[i].dependency
            assert dep.producer == f"designer-{i - 1}"
            assert dep.producer_step < dep.consumer_step \
                or dep.producer_step <= dep.consumer_step

    def test_shared_border_objects(self):
        workload = team_workload(3)
        assert "border-0-1" in workload.sessions[0].writes
        assert "border-0-1" in workload.sessions[1].writes

    def test_total_work(self):
        workload = team_workload(2, steps_per_session=3)
        assert workload.total_work == pytest.approx(sum(
            sum(s.step_durations) for s in workload.sessions))

    def test_invalid_team_size(self):
        with pytest.raises(ValueError):
            team_workload(0)

    def test_session_lookup(self):
        workload = team_workload(2)
        assert workload.session("designer-1").session_id == "designer-1"
        with pytest.raises(KeyError):
            workload.session("ghost")


class TestTeamSimulator:
    def test_flat_serialises_completely(self):
        workload = team_workload(4, seed=1)
        metrics = TeamSimulator(flat_acid_model(), workload).run()
        assert metrics.makespan == pytest.approx(workload.total_work,
                                                 rel=1e-6)

    def test_concord_beats_flat(self):
        workload = team_workload(5, seed=2)
        concord = TeamSimulator(concord_model(), workload).run()
        flat = TeamSimulator(flat_acid_model(), workload).run()
        assert concord.makespan < flat.makespan

    def test_contracts_between_concord_and_flat(self):
        workload = team_workload(5, seed=2)
        concord = TeamSimulator(concord_model(), workload).run()
        contracts = TeamSimulator(contracts_model(), workload).run()
        flat = TeamSimulator(flat_acid_model(), workload).run()
        assert concord.makespan <= contracts.makespan <= flat.makespan

    def test_gap_grows_with_team_size(self):
        small_gap = None
        for size, expect_growth in ((3, False), (7, True)):
            workload = team_workload(size, seed=4)
            concord = TeamSimulator(concord_model(), workload).run()
            flat = TeamSimulator(flat_acid_model(), workload).run()
            gap = flat.makespan - concord.makespan
            if expect_growth:
                assert gap > small_gap
            else:
                small_gap = gap

    def test_single_session_no_blocking(self):
        workload = team_workload(1, seed=0)
        for model in all_models():
            metrics = TeamSimulator(model, workload).run()
            assert metrics.total_blocked == 0.0
            assert metrics.makespan == pytest.approx(
                workload.total_work)

    def test_work_conserved(self):
        workload = team_workload(4, seed=9)
        for model in all_models():
            metrics = TeamSimulator(model, workload).run()
            assert metrics.total_work == pytest.approx(
                workload.total_work, rel=1e-6)

    def test_saga_rework_recorded(self):
        workload = team_workload(6, seed=7)
        metrics = TeamSimulator(saga_model(rework_probability=1.0),
                                workload).run()
        assert metrics.total_rework > 0.0

    def test_no_rework_without_probability(self):
        workload = team_workload(6, seed=7)
        metrics = TeamSimulator(nested_model(), workload).run()
        assert metrics.total_rework == 0.0

    def test_deterministic_runs(self):
        workload = team_workload(5, seed=11)
        a = TeamSimulator(concord_model(), workload).run()
        b = TeamSimulator(concord_model(), workload).run()
        assert a.makespan == b.makespan
        assert a.total_blocked == b.total_blocked


class TestWorkPosition:
    def test_within_first_step(self):
        step, in_step, done = work_position([10.0, 20.0], 4.0)
        assert (step, in_step, done) == (0, 4.0, 4.0)

    def test_at_boundary_enters_next(self):
        step, in_step, __ = work_position([10.0, 20.0], 10.0)
        assert (step, in_step) == (1, 0.0)

    def test_past_the_end(self):
        step, in_step, done = work_position([10.0, 20.0], 99.0)
        assert step == 2
        assert done == 30.0


class TestCrashLostWork:
    STEPS = [55.0, 70.0, 62.0, 48.0]

    def test_flat_linear_in_crash_time(self):
        flat = flat_acid_model()
        losses = [crash_lost_work(flat, self.STEPS, t).lost_work
                  for t in (20.0, 80.0, 150.0)]
        assert losses == [20.0, 80.0, 150.0]

    def test_step_models_bounded_by_step(self):
        for model in (nested_model(), contracts_model(), saga_model()):
            for t in (20.0, 80.0, 150.0, 200.0):
                lost = crash_lost_work(model, self.STEPS, t).lost_work
                assert lost <= max(self.STEPS)

    def test_concord_bounded_by_interval(self):
        model = concord_model(recovery_point_interval=15.0)
        for t in (20.0, 80.0, 150.0, 200.0):
            lost = crash_lost_work(model, self.STEPS, t).lost_work
            assert lost < 15.0

    def test_concord_ordering(self):
        for t in (20.0, 80.0, 150.0):
            concord = crash_lost_work(concord_model(10.0), self.STEPS,
                                      t).lost_work
            contracts = crash_lost_work(contracts_model(), self.STEPS,
                                        t).lost_work
            flat = crash_lost_work(flat_acid_model(), self.STEPS,
                                   t).lost_work
            assert concord <= contracts <= flat

    def test_crash_after_completion_loses_nothing(self):
        total = sum(self.STEPS)
        for model in all_models():
            assert crash_lost_work(model, self.STEPS,
                                   total + 1).lost_work == 0.0

    def test_concord_without_interval_behaves_like_step(self):
        model = concord_model(recovery_point_interval=0.0)
        lost = crash_lost_work(model, self.STEPS, 80.0).lost_work
        contracts = crash_lost_work(contracts_model(), self.STEPS,
                                    80.0).lost_work
        assert lost == contracts
