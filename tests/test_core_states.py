"""Unit tests for the Fig.7 DA state machine."""

from __future__ import annotations

import pytest

from repro.core.states import (
    DaOperation,
    DaState,
    DaStateMachine,
    ISSUED_BY_COOPERATING_DA,
    legal_operations,
    transition_table,
)
from repro.util.errors import IllegalTransitionError


class TestLifecyclePaths:
    def test_normal_commit_path(self):
        machine = DaStateMachine("da-1")
        assert machine.state is DaState.GENERATED
        machine.apply(DaOperation.START)
        assert machine.state is DaState.ACTIVE
        machine.apply(DaOperation.SUB_DA_READY_TO_COMMIT)
        assert machine.state is DaState.READY_FOR_TERMINATION
        machine.apply(DaOperation.TERMINATE_SUB_DA)
        assert machine.state is DaState.TERMINATED

    def test_impossible_spec_path(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.SUB_DA_IMPOSSIBLE_SPEC)
        assert machine.state is DaState.READY_FOR_TERMINATION
        # the super may send the DA back to work with a modified spec
        machine.apply(DaOperation.MODIFY_SUB_DA_SPEC)
        assert machine.state is DaState.ACTIVE

    def test_negotiation_path(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.PROPOSE)
        assert machine.state is DaState.NEGOTIATING
        machine.apply(DaOperation.DISAGREE)
        assert machine.state is DaState.NEGOTIATING
        machine.apply(DaOperation.AGREE)
        assert machine.state is DaState.ACTIVE

    def test_conflict_escalation_returns_to_active(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.PROPOSE)
        machine.apply(DaOperation.SUB_DA_SPEC_CONFLICT)
        assert machine.state is DaState.ACTIVE

    def test_termination_from_active(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.TERMINATE_SUB_DA)
        assert machine.state is DaState.TERMINATED


class TestIllegalTransitions:
    def test_start_twice(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        with pytest.raises(IllegalTransitionError):
            machine.apply(DaOperation.START)

    def test_agree_without_negotiation(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        with pytest.raises(IllegalTransitionError):
            machine.apply(DaOperation.AGREE)

    def test_nothing_after_termination(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.TERMINATE_SUB_DA)
        for operation in DaOperation:
            with pytest.raises(IllegalTransitionError):
                machine.apply(operation)

    def test_no_work_while_generated(self):
        machine = DaStateMachine("da-1")
        for operation in (DaOperation.PROPAGATE, DaOperation.EVALUATE,
                          DaOperation.PROPOSE, DaOperation.REQUIRE):
            with pytest.raises(IllegalTransitionError):
                machine.apply(operation)

    def test_error_carries_context(self):
        machine = DaStateMachine("da-1")
        with pytest.raises(IllegalTransitionError) as info:
            machine.apply(DaOperation.AGREE)
        assert info.value.state == "generated"
        assert info.value.operation == "Agree"

    def test_ready_for_termination_blocks_work(self):
        """'it should not do any more work until the super-DA has
        issued a corresponding request'."""
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.SUB_DA_READY_TO_COMMIT)
        for operation in (DaOperation.EVALUATE, DaOperation.PROPOSE,
                          DaOperation.CREATE_SUB_DA):
            with pytest.raises(IllegalTransitionError):
                machine.apply(operation)


class TestTableProperties:
    def test_all_table_entries_work(self):
        for (state, operation), target in transition_table().items():
            machine = DaStateMachine("probe")
            machine.state = state
            assert machine.apply(operation) is target

    def test_legal_operations_matches_can(self):
        for state in DaState:
            allowed = set(legal_operations(state))
            for operation in DaOperation:
                machine = DaStateMachine("probe")
                machine.state = state
                assert machine.can(operation) == (operation in allowed)

    def test_history_recorded(self):
        machine = DaStateMachine("da-1")
        machine.apply(DaOperation.START)
        machine.apply(DaOperation.EVALUATE)
        assert machine.history == [
            (DaOperation.START, DaState.GENERATED, DaState.ACTIVE),
            (DaOperation.EVALUATE, DaState.ACTIVE, DaState.ACTIVE),
        ]

    def test_cooperating_da_operations_marked(self):
        # the Fig.7 asterisks
        assert DaOperation.MODIFY_SUB_DA_SPEC in ISSUED_BY_COOPERATING_DA
        assert DaOperation.TERMINATE_SUB_DA in ISSUED_BY_COOPERATING_DA
        assert DaOperation.PROPOSE in ISSUED_BY_COOPERATING_DA
        assert DaOperation.EVALUATE not in ISSUED_BY_COOPERATING_DA
        assert DaOperation.PROPAGATE not in ISSUED_BY_COOPERATING_DA

    def test_terminated_has_no_legal_operations(self):
        assert legal_operations(DaState.TERMINATED) == []
