"""Unit tests for experiment reporting and the shared scenarios."""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult, format_table
from repro.bench.scenarios import (
    chip_spec,
    make_vlsi_system,
    subcell_script,
    subcell_seed,
)
from repro.te.context import DopContext
from repro.vlsi.floorplan import Floorplan, Placement


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header + ruler + 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_float_formatting(self):
        text = format_table([{"v": 1.23456}])
        assert "1.23" in text

    def test_missing_cell_is_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}],
                            columns=["a", "b"])
        assert "3" in text


class TestExperimentResult:
    def test_add_and_render(self):
        result = ExperimentResult("X1", "demo")
        result.add(metric="m", value=1)
        result.notes.append("hello")
        text = result.render()
        assert "X1" in text and "demo" in text
        assert "note: hello" in text


class TestChipSpec:
    def test_three_features(self):
        spec = chip_spec(10.0, 20.0)
        assert spec.names() == {"width-limit", "height-limit",
                                "area-limit"}
        assert spec.is_final({"width": 5.0, "height": 5.0, "area": 25.0})
        assert not spec.is_final({"width": 15.0, "height": 5.0,
                                  "area": 75.0})


class TestSubcellSeed:
    def test_seed_from_parent_floorplan(self):
        plan = Floorplan("cell-0", 20.0, 20.0)
        plan.placements["cell-0/A"] = Placement("cell-0/A", 1.0, 2.0,
                                                5.0, 6.0)
        context = DopContext(data={"floorplan": plan.to_dict()})
        subcell_seed(context, {"subcell": "cell-0/A",
                               "operations": ["x", "y"]})
        assert context.data["cell"] == "cell-0/A"
        assert context.data["interface"]["max_width"] == 5.0
        assert context.data["interface"]["origin"] == [1.0, 2.0]
        assert context.data["behavior"]["operations"] == ["x", "y"]
        # old parent data is cleared: the sub-DA starts a fresh design
        assert "floorplan" not in context.data

    def test_seed_without_parent_plan_uses_defaults(self):
        context = DopContext(data={})
        subcell_seed(context, {"subcell": "m", "max_width": 7.0,
                               "max_height": 8.0})
        assert context.data["interface"]["max_width"] == 7.0

    def test_subcell_script_structure(self):
        script = subcell_script("cell-0/A", ["a", "b"], max_rounds=3)
        sequences = script.sequences(max_iterations=1)
        assert sequences[0][0] == "subcell_seed"
        assert "chip_planner" in sequences[0]


class TestMakeVlsiSystem:
    def test_tools_and_dots_installed(self):
        system = make_vlsi_system(("ws-1",), trace=False)
        assert "chip_planner" in system.tools
        assert "subcell_seed" in system.tools
        assert system.repository.dot("Chip").name == "Chip"
        assert len(system.constraints) > 0

    def test_workstations_created(self):
        system = make_vlsi_system(("ws-1", "ws-2"), trace=False)
        assert system.client_tm("ws-1").workstation == "ws-1"
        assert system.client_tm("ws-2").workstation == "ws-2"
