"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "chip_planning_team.py",
    "failure_recovery.py",
    "cooperative_exchange.py",
    "software_engineering.py",
    "negotiation_session.py",
    "recursive_planning.py",
    "concurrent_team.py",
])
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), "examples must print their findings"


def test_run_experiments_single(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["run_experiments.py", "F7"])
    runpy.run_path(str(EXAMPLES / "run_experiments.py"),
                   run_name="__main__")
    captured = capsys.readouterr()
    assert "F7" in captured.out
    assert "T1" not in captured.out
