"""The scenario DSL: round-trips, diagnostics, and state isolation.

Three satellite surfaces of the scenario/trace PR:

* **property-based round-trips** — for arbitrary valid configs,
  ``parse(dump(config)) == config`` and a second dump is byte-stable;
* **diagnostics** — unknown tables/keys and out-of-range values raise
  :class:`ScenarioError` naming the offending TOML table and key;
* **no state leakage** — compiling and running the same scenario
  back to back (including two sequential CLI ``scenario run``
  invocations in one process) produces identical reports and output:
  the registry/compiler must not bleed RNG or counter state between
  runs.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.scenarios import (
    concurrent_delegation_scenario,
    object_buffer_scenario,
    write_back_scenario,
)
from repro.scenario import (
    SCENARIO_SCHEMA,
    ScenarioError,
    canonical_scenarios,
    compile_scenario,
    design_campaign_scenario,
    dump_scenario,
    load_scenario,
    parse_scenario,
    validate_scenario,
)

SCENARIOS_DIR = Path(__file__).parent.parent / "scenarios"


# ---------------------------------------------------------------------------
# property-based round-trips
# ---------------------------------------------------------------------------

def _raw_configs() -> st.SearchStrategy:
    """Arbitrary *valid* raw scenario definitions."""
    kinds = st.sampled_from(["object_buffers", "write_back", "campaign",
                             "federated_commit"])
    probability = st.floats(min_value=0.0, max_value=1.0,
                            allow_nan=False)
    return st.builds(
        lambda kind, seed, shards, parallel, team, steps, mean_step,
        pool, payload, reread, ratio, write_back, caching, bandwidth,
        latency, ttl, days, members, fed_placement, fed_batches: {
            "scenario": {"name": f"gen-{kind}-{seed}", "kind": kind,
                         "seed": seed},
            "kernel": {"shards": shards,
                       "parallel": parallel and shards >= 2},
            "team": {"size": team, "steps_per_session": steps,
                     "mean_step": mean_step},
            "objects": {"pool": pool, "payload_bytes": payload},
            "locality": {"reread": reread},
            "writes": {"ratio": ratio, "write_back": write_back},
            "buffers": {"caching": caching},
            "traffic": {"bandwidth": bandwidth,
                        "lan_latency": latency},
            "leases": {"ttl": ttl},
            "federation": {
                "members": members if kind == "federated_commit" else 1,
                "placement": fed_placement,
                "batches": fed_batches,
            },
            "campaign": {"days": days},
        },
        kinds,
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=8),
        st.booleans(),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=1 << 20),
        probability,
        probability,
        st.booleans(),
        st.booleans(),
        st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=2, max_value=12),
        st.sampled_from(["directory", "hash"]),
        st.integers(min_value=1, max_value=8),
    )


class TestRoundTripProperties:
    @settings(max_examples=100, deadline=None)
    @given(raw=_raw_configs())
    def test_parse_dump_parse_is_identity(self, raw):
        config = validate_scenario(raw)
        text = dump_scenario(config)
        assert parse_scenario(text) == config

    @settings(max_examples=50, deadline=None)
    @given(raw=_raw_configs())
    def test_dump_is_byte_stable(self, raw):
        config = validate_scenario(raw)
        once = dump_scenario(config)
        again = dump_scenario(parse_scenario(once))
        assert once == again

    @settings(max_examples=50, deadline=None)
    @given(raw=_raw_configs())
    def test_validation_is_pure(self, raw):
        """Validating twice from the same raw dict yields equal,
        independent configs — no shared mutable state."""
        first = validate_scenario(raw)
        second = validate_scenario(raw)
        assert first == second
        first.tables["team"]["size"] = -99  # vandalise one copy
        assert second.get("team", "size") != -99

    def test_subcell_round_trip(self):
        config = validate_scenario({
            "scenario": {"name": "x", "kind": "concurrent_delegation"},
            "team": {"subcells": ["A", "B"]},
            "crashes": {"schedule": [
                {"node": "ws-A", "at": 15.0, "restart_after": 5.0}]},
        })
        assert parse_scenario(dump_scenario(config)) == config


# ---------------------------------------------------------------------------
# diagnostics: every error names the offending [table].key
# ---------------------------------------------------------------------------

def _base(kind: str = "object_buffers", **tables) -> dict:
    raw = {"scenario": {"name": "diag", "kind": kind}}
    if kind == "concurrent_delegation":
        raw["team"] = {"subcells": ["A"]}
    raw.update(tables)
    return raw


class TestDiagnostics:
    def test_unknown_table_is_named(self):
        with pytest.raises(ScenarioError, match=r"\[typo\]"):
            validate_scenario(_base(typo={"x": 1}))

    def test_unknown_key_names_table_and_key(self):
        with pytest.raises(ScenarioError,
                           match=r"\[team\]: unknown key 'sizee'"):
            validate_scenario(_base(team={"sizee": 3}))

    def test_out_of_range_names_table_and_key(self):
        with pytest.raises(ScenarioError,
                           match=r"\[locality\]\.reread: 1\.4 above"):
            validate_scenario(_base(locality={"reread": 1.4}))

    def test_below_minimum_names_table_and_key(self):
        with pytest.raises(ScenarioError,
                           match=r"\[team\]\.size: 0 below"):
            validate_scenario(_base(team={"size": 0}))

    def test_wrong_type_names_table_and_key(self):
        with pytest.raises(ScenarioError,
                           match=r"\[writes\]\.write_back: expected "
                                 r"true/false"):
            validate_scenario(_base(writes={"write_back": "yes"}))

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ScenarioError,
                           match=r"\[team\]\.size: expected an integer"):
            validate_scenario(_base(team={"size": True}))

    def test_missing_required_key_is_named(self):
        with pytest.raises(ScenarioError,
                           match=r"\[scenario\]: missing required key "
                                 r"'kind'"):
            validate_scenario({"scenario": {"name": "x"}})

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ScenarioError,
                           match=r"\[scenario\]\.kind: 'bogus'"):
            validate_scenario(_base(kind="bogus"))

    def test_schedule_entry_errors_carry_the_index(self):
        with pytest.raises(ScenarioError,
                           match=r"\[crashes\]\.schedule\[0\]"):
            validate_scenario(_base(
                kind="concurrent_delegation",
                crashes={"schedule": [{"node": "ws-A"}]}))

    def test_subcells_require_delegation_kind(self):
        with pytest.raises(ScenarioError, match=r"\[team\]\.subcells"):
            validate_scenario(_base(team={"subcells": ["A"]}))

    def test_parallel_requires_multiple_shards(self):
        with pytest.raises(ScenarioError,
                           match=r"\[kernel\]\.parallel"):
            validate_scenario(_base(kernel={"parallel": True}))

    def test_hotspot_bias_requires_hotspots(self):
        with pytest.raises(ScenarioError,
                           match=r"\[objects\]\.hotspot_bias"):
            validate_scenario(_base(objects={"hotspot_bias": 0.5}))

    def test_federation_members_require_federated_kind(self):
        with pytest.raises(ScenarioError,
                           match=r"\[federation\]\.members"):
            validate_scenario(_base(federation={"members": 3}))

    def test_federated_commit_needs_two_members(self):
        with pytest.raises(ScenarioError,
                           match=r"\[federation\]\.members"):
            validate_scenario(_base(kind="federated_commit",
                                    federation={"members": 1}))

    def test_federation_placement_choices_are_named(self):
        with pytest.raises(ScenarioError,
                           match=r"\[federation\]\.placement: 'rand'"):
            validate_scenario(_base(
                kind="federated_commit",
                federation={"members": 3, "placement": "rand"}))

    def test_invalid_toml_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="invalid TOML"):
            parse_scenario("this is = = not toml")

    def test_load_error_names_the_file(self, tmp_path):
        bad = tmp_path / "broken.toml"
        bad.write_text("[locality]\nreread = 2.0\n"
                       "[scenario]\nname='x'\nkind='object_buffers'\n")
        with pytest.raises(ScenarioError, match="broken.toml"):
            load_scenario(bad)


# ---------------------------------------------------------------------------
# the shipped library stays in sync with the in-code canon
# ---------------------------------------------------------------------------

class TestShippedLibrary:
    def test_every_canonical_scenario_is_shipped(self):
        for name, config in canonical_scenarios().items():
            path = SCENARIOS_DIR / f"{name}.toml"
            assert path.is_file(), f"missing {path}"
            assert path.read_text(encoding="utf-8") \
                == dump_scenario(config), \
                f"{path} drifted from canonical_scenarios()"

    def test_no_stray_scenario_files(self):
        shipped = {p.stem for p in SCENARIOS_DIR.glob("*.toml")}
        assert shipped == set(canonical_scenarios())

    def test_t7_report_equals_hand_coded_runner(self):
        report = compile_scenario(
            canonical_scenarios()["t7_concurrent_team"]).run()
        __, reference = concurrent_delegation_scenario(("A", "B", "C"))
        assert report == reference

    def test_t8_report_equals_hand_coded_runner(self):
        report = compile_scenario(
            canonical_scenarios()["t8_object_buffers"]).run()
        assert report == object_buffer_scenario()

    def test_t9_reports_equal_hand_coded_runner(self):
        lib = canonical_scenarios()
        assert compile_scenario(lib["t9_write_back"]).run() \
            == write_back_scenario(write_back=True)
        assert compile_scenario(lib["t9_write_through"]).run() \
            == write_back_scenario(write_back=False)

    def test_t10_report_equals_hand_coded_matrix(self):
        from repro.bench.scenarios import federated_commit_scenario

        report = compile_scenario(
            canonical_scenarios()["t10_federated_commit"]).run()
        assert report["states_identical"] is True
        assert set(report["crashes"]) \
            == {"none", "before", "after", "coordinator"}
        assert report["crashes"]["after"] \
            == asdict(federated_commit_scenario(crash="after"))

    def test_dumped_files_parse_back_to_the_canon(self):
        for name, config in canonical_scenarios().items():
            assert load_scenario(SCENARIOS_DIR / f"{name}.toml") \
                == config


# ---------------------------------------------------------------------------
# state isolation: back-to-back runs must not bleed
# ---------------------------------------------------------------------------

class TestNoStateLeakage:
    def test_run_a_run_b_run_a_is_stable(self):
        """Interleaving a different scenario must not perturb the
        next run of the first — shared registries (RNGs, id
        generators, compat flags) may not carry state across runs."""
        lib = canonical_scenarios()
        t8 = compile_scenario(lib["t8_object_buffers"])
        other = compile_scenario(lib["t9_write_back"])
        first = t8.run()
        other.run()
        third = t8.run()
        assert first == third

    def test_compiled_scenario_is_reusable(self):
        compiled = compile_scenario(
            canonical_scenarios()["t8_object_buffers"])
        assert compiled.run() == compiled.run()

    def test_campaign_back_to_back_is_stable(self):
        reports = [design_campaign_scenario(days=2, team=2,
                                            sessions_per_day=2)
                   for _ in range(2)]
        assert asdict(reports[0]) == asdict(reports[1])

    def test_two_sequential_cli_runs_print_identical_output(self, capsys):
        """The regression the issue names: two ``scenario run``
        invocations in one process must emit byte-identical reports."""
        from repro.__main__ import main

        path = str(SCENARIOS_DIR / "t8_object_buffers.toml")
        assert main(["scenario", "run", path]) == 0
        first = capsys.readouterr().out
        assert main(["scenario", "run", path]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "bytes_shipped" in first
