"""Tests for the fan-in (integration) workload topology."""

from __future__ import annotations

import pytest

from repro.baselines.models import all_models, concord_model, flat_acid_model
from repro.workload.generator import (
    Dependency,
    SessionSpec,
    integration_workload,
    team_workload,
)
from repro.workload.simulator import TeamSimulator


class TestIntegrationWorkload:
    def test_structure(self):
        workload = integration_workload(team_size=4, seed=1)
        assert len(workload.sessions) == 5
        integrator = workload.session("integrator")
        assert len(integrator.dependencies) == 4
        producers = {d.producer for d in integrator.dependencies}
        assert producers == {f"designer-{i}" for i in range(4)}

    def test_designers_independent(self):
        workload = integration_workload(team_size=3, seed=2)
        for i in range(3):
            assert workload.session(f"designer-{i}").dependencies == []

    def test_invalid_team_size(self):
        with pytest.raises(ValueError):
            integration_workload(0)

    def test_deterministic(self):
        a = integration_workload(4, seed=9)
        b = integration_workload(4, seed=9)
        assert [s.step_durations for s in a.sessions] == \
               [s.step_durations for s in b.sessions]


class TestFanInSimulation:
    def test_all_models_complete(self):
        workload = integration_workload(team_size=4, seed=3)
        for model in all_models():
            metrics = TeamSimulator(model, workload).run()
            assert metrics.sessions["integrator"].end > 0

    def test_concord_integrator_starts_before_producers_commit(self):
        """The integrator consumes *preliminary* results: under
        CONCORD it can proceed once the producers' pre-release step is
        done, under flat ACID only after every producer commits."""
        workload = integration_workload(team_size=5, seed=3)
        concord = TeamSimulator(concord_model(), workload).run()
        flat = TeamSimulator(flat_acid_model(), workload).run()
        assert concord.sessions["integrator"].end \
            < flat.sessions["integrator"].end
        assert concord.makespan <= flat.makespan

    def test_commit_visibility_waits_for_slowest(self):
        workload = integration_workload(team_size=4, seed=5)
        flat = TeamSimulator(flat_acid_model(), workload).run()
        slowest_producer_end = max(
            flat.sessions[f"designer-{i}"].end for i in range(4))
        integrator = flat.sessions["integrator"]
        # the integrator's dependent step cannot predate the slowest
        # producer's commit
        assert integrator.end >= slowest_producer_end


class TestMultiDependencySemantics:
    def test_dependencies_at(self):
        spec = SessionSpec("s", [1.0, 2.0, 3.0], dependencies=[
            Dependency("p1", 0, 1), Dependency("p2", 0, 1),
            Dependency("p3", 0, 2)])
        assert len(spec.dependencies_at(1)) == 2
        assert len(spec.dependencies_at(2)) == 1
        assert spec.dependencies_at(0) == []

    def test_legacy_dependency_accessor(self):
        spec = SessionSpec("s", [1.0], dependencies=[
            Dependency("p1", 0, 0)])
        assert spec.dependency.producer == "p1"
        assert SessionSpec("t", [1.0]).dependency is None


class TestReadLocality:
    """The re-read locality knob feeding the T8 data-shipping runs."""

    def test_reads_off_by_default(self):
        workload = team_workload(3)
        assert all(s.reads == [] for s in workload.sessions)
        assert workload.sessions[0].reads_at(0) == []

    def test_reads_generated_per_step(self):
        workload = team_workload(3, steps_per_session=4,
                                 reads_per_step=2, reread_locality=0.5)
        for spec in workload.sessions:
            assert len(spec.reads) == 4
            for step_reads in spec.reads:
                assert len(step_reads) == 2
                # distinct within one step; drawn from the library pool
                assert len(set(step_reads)) == 2
                assert all(obj.startswith("lib-")
                           for obj in step_reads)

    def test_full_locality_rereads_the_working_set(self):
        workload = team_workload(2, steps_per_session=5,
                                 reads_per_step=1,
                                 reread_locality=1.0, object_pool=8)
        for spec in workload.sessions:
            # after the first (cold) read every step revisits it
            first = spec.reads[0][0]
            assert all(step == [first] for step in spec.reads[1:])

    def test_zero_locality_never_needs_history(self):
        workload = team_workload(2, steps_per_session=4,
                                 reads_per_step=2,
                                 reread_locality=0.0, object_pool=8)
        seen = {obj for spec in workload.sessions
                for step in spec.reads for obj in step}
        assert seen  # fresh pool draws only

    def test_reads_are_seed_deterministic(self):
        first = team_workload(3, reads_per_step=2, reread_locality=0.6)
        second = team_workload(3, reads_per_step=2, reread_locality=0.6)
        assert [s.reads for s in first.sessions] \
            == [s.reads for s in second.sessions]
