"""Unit tests for the DOP lifecycle guards."""

from __future__ import annotations

import pytest

from repro.te.dop import DesignOperation, DopState
from repro.util.errors import TransactionStateError


def make_dop(state: DopState = DopState.CREATED) -> DesignOperation:
    dop = DesignOperation("dop-1", "da-1", "ws-1", "tool")
    dop.transition(state)
    return dop


class TestStateGuards:
    def test_created_allows_activate_and_abort_only(self):
        dop = make_dop(DopState.CREATED)
        dop.require("activate")
        dop.require("abort")
        for operation in ("checkout", "work", "save", "restore",
                          "suspend", "checkin", "commit", "resume"):
            with pytest.raises(TransactionStateError):
                dop.require(operation)

    def test_active_allows_processing(self):
        dop = make_dop(DopState.ACTIVE)
        for operation in ("checkout", "work", "save", "restore",
                          "suspend", "checkin", "commit", "abort"):
            dop.require(operation)
        with pytest.raises(TransactionStateError):
            dop.require("resume")

    def test_suspended_allows_resume_and_abort_only(self):
        dop = make_dop(DopState.SUSPENDED)
        dop.require("resume")
        dop.require("abort")
        for operation in ("work", "checkout", "checkin", "commit",
                          "save"):
            with pytest.raises(TransactionStateError):
                dop.require(operation)

    @pytest.mark.parametrize("terminal", [DopState.COMMITTED,
                                          DopState.ABORTED])
    def test_terminal_states_allow_nothing(self, terminal):
        dop = make_dop(terminal)
        assert terminal.terminal
        for operation in ("activate", "checkout", "work", "save",
                          "restore", "suspend", "resume", "checkin",
                          "commit", "abort"):
            with pytest.raises(TransactionStateError):
                dop.require(operation)

    def test_non_terminal_states(self):
        for state in (DopState.CREATED, DopState.ACTIVE,
                      DopState.SUSPENDED):
            assert not state.terminal

    def test_is_running(self):
        assert make_dop(DopState.ACTIVE).is_running
        assert make_dop(DopState.SUSPENDED).is_running
        assert not make_dop(DopState.CREATED).is_running
        assert not make_dop(DopState.COMMITTED).is_running

    def test_error_message_names_dop_and_state(self):
        dop = make_dop(DopState.COMMITTED)
        with pytest.raises(TransactionStateError) as info:
            dop.require("work")
        assert "dop-1" in str(info.value)
        assert "committed" in str(info.value)
