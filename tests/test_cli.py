"""Tests for the ``python -m repro`` entry point."""

from __future__ import annotations

from repro.__main__ import main


def test_single_experiment(capsys):
    assert main(["F7"]) == 0
    out = capsys.readouterr().out
    assert "F7" in out
    assert "T1" not in out


def test_unknown_experiment(capsys):
    assert main(["Z9"]) == 2
    assert "unknown" in capsys.readouterr().out


def test_case_insensitive(capsys):
    assert main(["f2"]) == 0
    assert "F2" in capsys.readouterr().out


def test_scorecard_flag(capsys):
    assert main(["scorecard"]) == 0
    out = capsys.readouterr().out
    assert "SCORECARD" in out
    assert "22/22" in out


class TestScenarioSubcommand:
    SCENARIOS = "scenarios"

    def test_run_prints_the_report(self, capsys):
        assert main(["scenario", "run",
                     f"{self.SCENARIOS}/t8_object_buffers.toml"]) == 0
        out = capsys.readouterr().out
        assert "scenario t8-object-buffers:" in out
        assert "bytes_shipped" in out
        assert "hit_rate" in out

    def test_validate_accepts_shipped_files(self, capsys):
        assert main(["scenario", "validate",
                     f"{self.SCENARIOS}/t9_write_back.toml"]) == 0
        assert "OK: t9-write-back" in capsys.readouterr().out

    def test_validate_rejects_and_names_the_key(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[scenario]\nname = "x"\n'
                       'kind = "object_buffers"\n'
                       '[locality]\nreread = 3.0\n')
        assert main(["scenario", "validate", str(bad)]) == 2
        assert "[locality].reread" in capsys.readouterr().err

    def test_list_names_the_library(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "t7_concurrent_team" in out
        assert "campaign_design_week" in out

    def test_dump_round_trips_through_the_parser(self, capsys):
        from repro.scenario import canonical_scenarios, parse_scenario

        assert main(["scenario", "dump", "t8_object_buffers"]) == 0
        text = capsys.readouterr().out
        assert parse_scenario(text) \
            == canonical_scenarios()["t8_object_buffers"]

    def test_usage_on_missing_args(self, capsys):
        assert main(["scenario"]) == 2
        assert "usage" in capsys.readouterr().out


class TestTraceSubcommand:
    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        out = tmp_path / "t8.jsonl"
        assert main(["trace", "record",
                     "scenarios/t8_object_buffers.toml",
                     "-o", str(out)]) == 0
        assert "recorded" in capsys.readouterr().out
        assert out.is_file()
        assert main(["trace", "replay", str(out)]) == 0
        assert "traces identical" in capsys.readouterr().out

    def test_replay_of_committed_golden_passes(self, capsys):
        assert main(["trace", "replay",
                     "tests/data/traces/t7_concurrent_team.jsonl"]) == 0
        assert "traces identical" in capsys.readouterr().out

    def test_replay_compat_build(self, capsys):
        assert main(["trace", "replay",
                     "tests/data/traces/t8_object_buffers.jsonl",
                     "--compat"]) == 0
        assert "traces identical" in capsys.readouterr().out

    def test_diff_reports_divergence_and_fails(self, tmp_path, capsys):
        from repro.sim.trace import load_trace, save_trace

        golden = "tests/data/traces/t8_object_buffers.jsonl"
        doctored = load_trace(golden)
        time, priority, seq, _ = doctored.events[5]
        doctored.events[5] = (time, priority, seq, "doctored")
        doctored_path = tmp_path / "doctored.jsonl"
        save_trace(doctored, doctored_path)
        assert main(["trace", "diff", golden, str(doctored_path)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGE" in out
        assert "#5" in out
        assert "doctored" in out

    def test_bad_trace_file_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "replay", str(bad)]) == 2
        assert "trace error" in capsys.readouterr().err

    def test_usage_on_missing_args(self, capsys):
        assert main(["trace"]) == 2
        assert "usage" in capsys.readouterr().out
