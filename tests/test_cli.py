"""Tests for the ``python -m repro`` entry point."""

from __future__ import annotations

from repro.__main__ import main


def test_single_experiment(capsys):
    assert main(["F7"]) == 0
    out = capsys.readouterr().out
    assert "F7" in out
    assert "T1" not in out


def test_unknown_experiment(capsys):
    assert main(["Z9"]) == 2
    assert "unknown" in capsys.readouterr().out


def test_case_insensitive(capsys):
    assert main(["f2"]) == 0
    assert "F2" in capsys.readouterr().out


def test_scorecard_flag(capsys):
    assert main(["scorecard"]) == 0
    out = capsys.readouterr().out
    assert "SCORECARD" in out
    assert "22/22" in out
