"""Unit tests for the lock manager: short / derivation / scope locks."""

from __future__ import annotations

import pytest

from repro.te.locks import LockManager, LockMode
from repro.util.errors import LockConflictError


class TestShortLocks:
    def test_shared_reads(self):
        locks = LockManager()
        locks.acquire("dov-1", "dop-1", LockMode.SHORT_READ)
        locks.acquire("dov-1", "dop-2", LockMode.SHORT_READ)
        assert len(locks.holders("dov-1")) == 2

    def test_write_excludes_read(self):
        locks = LockManager()
        locks.acquire("dov-1", "dop-1", LockMode.SHORT_WRITE)
        with pytest.raises(LockConflictError):
            locks.acquire("dov-1", "dop-2", LockMode.SHORT_READ)

    def test_write_excludes_write(self):
        locks = LockManager()
        locks.acquire("g", "t1", LockMode.SHORT_WRITE)
        with pytest.raises(LockConflictError) as info:
            locks.acquire("g", "t2", LockMode.SHORT_WRITE)
        assert info.value.holder == "t1"

    def test_reacquire_is_idempotent(self):
        locks = LockManager()
        locks.acquire("dov-1", "dop-1", LockMode.SHORT_READ)
        locks.acquire("dov-1", "dop-1", LockMode.SHORT_READ)
        assert len(locks.holders("dov-1")) == 1

    def test_release_specific_mode(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        locks.acquire("dov-1", "da-1", LockMode.SCOPE)
        released = locks.release("dov-1", "da-1", LockMode.DERIVATION)
        assert released == 1
        assert locks.holds("dov-1", "da-1", LockMode.SCOPE)

    def test_release_all_modes(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        locks.acquire("dov-1", "da-1", LockMode.SCOPE)
        assert locks.release("dov-1", "da-1") == 2


class TestDerivationLocks:
    def test_exclusive_between_das(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        with pytest.raises(LockConflictError):
            locks.acquire("dov-1", "da-2", LockMode.DERIVATION)

    def test_compatible_with_short_read(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        locks.acquire("dov-1", "dop-9", LockMode.SHORT_READ)

    def test_blocks_short_write(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        with pytest.raises(LockConflictError):
            locks.acquire("dov-1", "t-1", LockMode.SHORT_WRITE)

    def test_try_acquire(self):
        locks = LockManager()
        assert locks.try_acquire("dov-1", "da-1",
                                 LockMode.DERIVATION) is not None
        assert locks.try_acquire("dov-1", "da-2",
                                 LockMode.DERIVATION) is None

    def test_release_all_for_holder(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        locks.acquire("dov-2", "da-1", LockMode.DERIVATION)
        assert locks.release_all("da-1", LockMode.DERIVATION) == 2
        assert locks.locks_of("da-1") == []


class TestScopeLocks:
    def test_single_scope_lock(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.SCOPE)
        assert locks.scope_of("da-1") == {"dov-1"}

    def test_second_scope_denied_without_usage(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.SCOPE)
        with pytest.raises(LockConflictError):
            locks.acquire("dov-1", "da-2", LockMode.SCOPE)
        assert locks.stats.conflicts == 1

    def test_usage_relationship_allows_sharing(self):
        locks = LockManager(
            usage_allows=lambda req, holder, dov: req == "da-2")
        locks.acquire("dov-1", "da-1", LockMode.SCOPE)
        locks.acquire("dov-1", "da-2", LockMode.SCOPE)
        assert locks.stats.usage_grants == 1
        with pytest.raises(LockConflictError):
            locks.acquire("dov-1", "da-3", LockMode.SCOPE)

    def test_scope_lock_does_not_block_processing_locks(self):
        locks = LockManager()
        locks.acquire("dov-1", "da-1", LockMode.SCOPE)
        locks.acquire("dov-1", "da-1", LockMode.DERIVATION)
        locks.acquire("dov-1", "dop-1", LockMode.SHORT_READ)


class TestScopeInheritance:
    def test_only_final_dovs_inherited(self):
        locks = LockManager()
        locks.acquire("final-1", "sub", LockMode.SCOPE)
        locks.acquire("final-2", "sub", LockMode.SCOPE)
        locks.acquire("preliminary", "sub", LockMode.SCOPE)
        inherited = locks.inherit_scope_locks(
            "sub", "super", {"final-1", "final-2"})
        assert sorted(inherited) == ["final-1", "final-2"]
        assert locks.scope_of("super") == {"final-1", "final-2"}
        # the sub's locks are gone, incl. the preliminary one
        assert locks.scope_of("sub") == set()
        assert locks.holders("preliminary") == []

    def test_inheritance_idempotent_if_super_already_holds(self):
        locks = LockManager(usage_allows=lambda *a: True)
        locks.acquire("final-1", "sub", LockMode.SCOPE)
        locks.acquire("final-1", "super", LockMode.SCOPE)
        locks.inherit_scope_locks("sub", "super", {"final-1"})
        grants = locks.holders("final-1", LockMode.SCOPE)
        assert len(grants) == 1
        assert grants[0].holder == "super"

    def test_inherited_counted(self):
        locks = LockManager()
        locks.acquire("f", "sub", LockMode.SCOPE)
        locks.inherit_scope_locks("sub", "super", {"f"})
        assert locks.stats.inherited == 1


class TestStats:
    def test_counters(self):
        locks = LockManager()
        locks.acquire("r", "a", LockMode.SHORT_READ)
        locks.try_acquire("r", "b", LockMode.SHORT_WRITE)
        locks.release("r", "a")
        assert locks.stats.granted == 1
        assert locks.stats.conflicts == 1
        assert locks.stats.released == 1

    def test_table_size(self):
        locks = LockManager()
        locks.acquire("a", "x", LockMode.SHORT_READ)
        locks.acquire("b", "x", LockMode.SHORT_READ)
        assert locks.table_size() == 2
        locks.release_all("x")
        assert locks.table_size() == 0
