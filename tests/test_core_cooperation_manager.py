"""Integration tests for the cooperation manager: delegation + scope."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.core.features import DesignSpecification, RangeFeature
from repro.core.states import DaState
from repro.dc.script import DopStep, Script, Sequence
from repro.repository.schema import DesignObjectType
from repro.util.errors import (
    CooperationError,
    DelegationError,
    IllegalTransitionError,
    ScopeViolationError,
)
from repro.vlsi.tools import vlsi_dots


NOOP = Script(Sequence(DopStep("structure_synthesis")), "noop")


@pytest.fixture
def rig():
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", NOOP, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b"]}})
    system.start(top.da_id)
    return system, dots, top


class TestInitDesign:
    def test_creates_generated_da_with_dov0(self, rig):
        system, dots, top = rig
        assert top.is_top_level
        assert top.vector.initial_dov is not None
        assert system.repository.has_graph(top.da_id)
        assert top.vector.initial_dov in system.repository.graph(top.da_id)

    def test_start_required_before_work(self, rig):
        system, dots, __ = rig
        da = system.init_design(dots["Chip"], chip_spec(10, 10), "x",
                                NOOP, "ws-1")
        assert da.state is DaState.GENERATED
        with pytest.raises(IllegalTransitionError):
            system.cm.propagate(da.da_id, "dov-1")
        system.start(da.da_id)
        assert da.state is DaState.ACTIVE


class TestDelegation:
    def test_create_sub_da(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(50, 50), "sue", NOOP, "ws-2")
        assert sub.parent == top.da_id
        assert sub.da_id in top.children
        assert sub.state is DaState.GENERATED

    def test_dot_must_be_part_of_super_dot(self, rig):
        system, dots, top = rig
        foreign = DesignObjectType("Foreign")
        with pytest.raises(DelegationError):
            system.create_sub_da(top.da_id, foreign, chip_spec(1, 1),
                                 "x", NOOP, "ws-2")

    def test_sub_of_sub(self, rig):
        system, dots, top = rig
        module = system.create_sub_da(top.da_id, dots["Module"],
                                      chip_spec(50, 50), "m", NOOP,
                                      "ws-2")
        system.start(module.da_id)
        block = system.create_sub_da(module.da_id, dots["Block"],
                                     chip_spec(20, 20), "b", NOOP,
                                     "ws-3")
        assert system.cm.hierarchy_depth(block.da_id) == 2

    def test_initial_dov_must_be_in_super_scope(self, rig):
        system, dots, top = rig
        with pytest.raises(ScopeViolationError):
            system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(1, 1), "x", NOOP, "ws-2",
                                 initial_dov="dov-404")

    def test_initial_dov_enters_sub_scope(self, rig):
        system, dots, top = rig
        dov0 = top.vector.initial_dov
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(50, 50), "sue", NOOP,
                                   "ws-2", initial_dov=dov0)
        assert system.cm.in_scope(sub.da_id, dov0)

    def test_generated_sub_cannot_delegate(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(50, 50), "s", NOOP, "ws-2")
        with pytest.raises(IllegalTransitionError):
            system.create_sub_da(sub.da_id, dots["Block"],
                                 chip_spec(1, 1), "x", NOOP, "ws-2")


class TestEvaluateAndReadyToCommit:
    def _sub_with_dov(self, rig, width=10.0):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(50, 50), "sue", NOOP, "ws-2")
        system.start(sub.da_id)
        dov = system.repository.checkin(
            sub.da_id, "Module",
            {"cell": "m", "level": "module", "width": width,
             "height": 10.0, "area": width * 10.0})
        return system, top, sub, dov

    def test_evaluate_records_quality(self, rig):
        system, top, sub, dov = self._sub_with_dov(rig)
        quality = system.cm.evaluate(sub.da_id, dov.dov_id)
        assert quality.is_final
        assert sub.final_dovs == [dov.dov_id]

    def test_evaluate_preliminary(self, rig):
        system, top, sub, dov = self._sub_with_dov(rig, width=90.0)
        quality = system.cm.evaluate(sub.da_id, dov.dov_id)
        assert quality.is_preliminary
        assert "width-limit" in quality.missing
        assert sub.final_dovs == []

    def test_evaluate_out_of_scope_rejected(self, rig):
        system, top, sub, __ = self._sub_with_dov(rig)
        with pytest.raises(ScopeViolationError):
            system.cm.evaluate(sub.da_id, top.vector.initial_dov)

    def test_ready_to_commit_requires_final(self, rig):
        system, top, sub, dov = self._sub_with_dov(rig, width=90.0)
        system.cm.evaluate(sub.da_id, dov.dov_id)
        with pytest.raises(CooperationError):
            system.cm.sub_da_ready_to_commit(sub.da_id)

    def test_ready_to_commit_notifies_super(self, rig):
        system, top, sub, dov = self._sub_with_dov(rig)
        system.cm.evaluate(sub.da_id, dov.dov_id)
        system.cm.sub_da_ready_to_commit(sub.da_id)
        assert sub.state is DaState.READY_FOR_TERMINATION
        messages = system.cm.pop_messages(top.da_id, "ready_to_commit")
        assert len(messages) == 1
        assert messages[0].payload["final_dovs"] == [dov.dov_id]

    def test_super_may_read_finals_at_ready(self, rig):
        """'a super-DA may read the final DOVs of a sub-DA as soon as
        the sub-DA changes its state to ready-for-termination'."""
        system, top, sub, dov = self._sub_with_dov(rig)
        assert not system.cm.in_scope(top.da_id, dov.dov_id)
        system.cm.evaluate(sub.da_id, dov.dov_id)
        system.cm.sub_da_ready_to_commit(sub.da_id)
        assert system.cm.in_scope(top.da_id, dov.dov_id)

    def test_top_level_cannot_be_ready(self, rig):
        system, __, top = rig[0], rig[1], rig[2]
        with pytest.raises(CooperationError):
            system.cm.sub_da_ready_to_commit(top.da_id)


class TestTerminate:
    def _ready_sub(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(50, 50), "sue", NOOP, "ws-2")
        system.start(sub.da_id)
        final = system.repository.checkin(
            sub.da_id, "Module", {"cell": "m", "level": "module",
                                  "width": 10.0, "height": 10.0,
                                  "area": 100.0})
        preliminary = system.repository.checkin(
            sub.da_id, "Module", {"cell": "m", "level": "module",
                                  "width": 90.0, "height": 90.0,
                                  "area": 8100.0},
            parents=(final.dov_id,))
        system.cm.evaluate(sub.da_id, final.dov_id)
        system.cm.evaluate(sub.da_id, preliminary.dov_id)
        system.cm.sub_da_ready_to_commit(sub.da_id)
        return system, top, sub, final, preliminary

    def test_final_dovs_devolve(self, rig):
        system, top, sub, final, preliminary = self._ready_sub(rig)
        inherited = system.cm.terminate_sub_da(top.da_id, sub.da_id)
        assert inherited == [final.dov_id]
        assert sub.state is DaState.TERMINATED
        assert system.cm.in_scope(top.da_id, final.dov_id)
        assert not system.cm.in_scope(top.da_id, preliminary.dov_id)

    def test_only_super_may_terminate(self, rig):
        system, top, sub, __, __p = self._ready_sub(rig)
        with pytest.raises(DelegationError):
            system.cm.terminate_sub_da("da-999", sub.da_id)

    def test_terminated_da_refuses_operations(self, rig):
        system, top, sub, final, __ = self._ready_sub(rig)
        system.cm.terminate_sub_da(top.da_id, sub.da_id)
        with pytest.raises(IllegalTransitionError):
            system.cm.evaluate(sub.da_id, final.dov_id)

    def test_children_of_excludes_terminated(self, rig):
        system, top, sub, __, __p = self._ready_sub(rig)
        system.cm.terminate_sub_da(top.da_id, sub.da_id)
        assert system.cm.children_of(top.da_id) == []
        assert len(system.cm.children_of(top.da_id,
                                         include_terminated=True)) == 1

    def test_finish_top_level_releases_locks(self, rig):
        system, top, sub, final, __ = self._ready_sub(rig)
        system.cm.terminate_sub_da(top.da_id, sub.da_id)
        system.cm.finish_top_level(top.da_id)
        assert system.cm.da(top.da_id).state is DaState.TERMINATED
        assert system.locks.scope_of(top.da_id) == set()

    def test_finish_top_level_blocked_by_live_subs(self, rig):
        system, top, sub, __, __p = self._ready_sub(rig)
        with pytest.raises(CooperationError):
            system.cm.finish_top_level(top.da_id)


class TestModifySpecification:
    def test_modification_reevaluates(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(5, 5), "sue", NOOP, "ws-2")
        system.start(sub.da_id)
        dov = system.repository.checkin(
            sub.da_id, "Module", {"cell": "m", "level": "module",
                                  "width": 10.0, "height": 10.0,
                                  "area": 100.0})
        quality = system.cm.evaluate(sub.da_id, dov.dov_id)
        assert not quality.is_final  # 10 > 5
        system.cm.modify_sub_da_specification(top.da_id, sub.da_id,
                                              chip_spec(20, 20))
        # re-evaluation under the new spec turned the DOV final
        assert sub.final_dovs == [dov.dov_id]

    def test_only_super_may_modify(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(5, 5), "sue", NOOP, "ws-2")
        with pytest.raises(DelegationError):
            system.cm.modify_sub_da_specification("da-999", sub.da_id,
                                                  chip_spec(1, 1))

    def test_dm_notified_for_restart(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(5, 5), "sue", NOOP, "ws-2")
        system.start(sub.da_id)
        dm = system.runtime(sub.da_id).dm
        dm.executed_tools.append("structure_synthesis")  # pretend work
        system.cm.modify_sub_da_specification(top.da_id, sub.da_id,
                                              chip_spec(9, 9),
                                              restart_dov=None)
        assert dm.executed_tools == []  # script restarted

    def test_impossible_spec_message(self, rig):
        system, dots, top = rig
        sub = system.create_sub_da(top.da_id, dots["Module"],
                                   chip_spec(5, 5), "sue", NOOP, "ws-2")
        system.start(sub.da_id)
        system.cm.sub_da_impossible_specification(sub.da_id,
                                                  "not enough area")
        assert sub.state is DaState.READY_FOR_TERMINATION
        messages = system.cm.pop_messages(top.da_id,
                                          "impossible_specification")
        assert messages[0].payload["reason"] == "not enough area"
