"""Unit tests for features, specifications and quality states."""

from __future__ import annotations

import pytest

from repro.core.features import (
    DesignSpecification,
    PredicateFeature,
    QualityState,
    RangeFeature,
    TestToolFeature,
)
from repro.util.errors import SpecificationError


class TestRangeFeature:
    def test_satisfied_within_bounds(self):
        feature = RangeFeature("f", "area", lo=1.0, hi=10.0)
        assert feature.satisfied({"area": 5.0})
        assert not feature.satisfied({"area": 0.5})
        assert not feature.satisfied({"area": 11.0})

    def test_missing_attribute_unsatisfied(self):
        assert not RangeFeature("f", "area", hi=1.0).satisfied({})

    def test_non_numeric_unsatisfied(self):
        assert not RangeFeature("f", "area", hi=1.0).satisfied(
            {"area": "big"})

    def test_needs_a_bound(self):
        with pytest.raises(SpecificationError):
            RangeFeature("f", "area")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(SpecificationError):
            RangeFeature("f", "area", lo=10.0, hi=1.0)

    def test_restricts_subinterval(self):
        wide = RangeFeature("f", "area", lo=0.0, hi=10.0)
        narrow = RangeFeature("f", "area", lo=2.0, hi=8.0)
        assert narrow.restricts(wide)
        assert not wide.restricts(narrow)

    def test_restricts_requires_same_attr_and_name(self):
        a = RangeFeature("f", "area", hi=10.0)
        assert not RangeFeature("g", "area", hi=5.0).restricts(a)
        assert not RangeFeature("f", "width", hi=5.0).restricts(a)

    def test_restricts_open_bounds(self):
        open_hi = RangeFeature("f", "area", lo=0.0)
        bounded = RangeFeature("f", "area", lo=0.0, hi=5.0)
        assert bounded.restricts(open_hi)
        assert not open_hi.restricts(bounded)

    def test_widened(self):
        feature = RangeFeature("f", "area", lo=0.0, hi=5.0)
        wider = feature.widened(hi=10.0)
        assert wider.hi == 10.0
        assert wider.lo == 0.0


class TestOtherFeatures:
    def test_predicate_feature(self):
        feature = PredicateFeature("even", lambda d: d.get("n", 1) % 2 == 0)
        assert feature.satisfied({"n": 4})
        assert not feature.satisfied({"n": 3})

    def test_predicate_exception_is_unsatisfied(self):
        feature = PredicateFeature("boom", lambda d: 1 / 0)
        assert not feature.satisfied({})

    def test_test_tool_feature(self):
        drc = TestToolFeature("drc", "drc-tool",
                              lambda d: d.get("valid", False))
        assert drc.satisfied({"valid": True})
        assert not drc.satisfied({})

    def test_test_tool_restricts_same_tool(self):
        a = TestToolFeature("drc", "drc-tool", lambda d: True)
        b = TestToolFeature("drc", "drc-tool", lambda d: True)
        c = TestToolFeature("drc", "other-tool", lambda d: True)
        assert a.restricts(b)
        assert not a.restricts(c)

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            PredicateFeature("", lambda d: True)


class TestQualityState:
    def test_final_vs_preliminary(self):
        final = QualityState(frozenset({"a", "b"}), frozenset({"a", "b"}))
        preliminary = QualityState(frozenset({"a"}),
                                   frozenset({"a", "b"}))
        assert final.is_final and not final.is_preliminary
        assert preliminary.is_preliminary and not preliminary.is_final

    def test_distance_and_missing(self):
        quality = QualityState(frozenset({"a"}), frozenset({"a", "b", "c"}))
        assert quality.distance == 2
        assert quality.missing == {"b", "c"}

    def test_covers(self):
        quality = QualityState(frozenset({"a", "b"}),
                               frozenset({"a", "b", "c"}))
        assert quality.covers({"a"})
        assert quality.covers({"a", "b"})
        assert not quality.covers({"c"})
        assert quality.covers(set())


class TestDesignSpecification:
    def _spec(self):
        return DesignSpecification([
            RangeFeature("area-limit", "area", hi=100.0),
            RangeFeature("width-limit", "width", hi=10.0),
        ])

    def test_evaluate(self):
        spec = self._spec()
        quality = spec.evaluate({"area": 50.0, "width": 20.0})
        assert quality.fulfilled == {"area-limit"}
        assert not quality.is_final

    def test_is_final(self):
        spec = self._spec()
        assert spec.is_final({"area": 50.0, "width": 5.0})
        assert not spec.is_final({"area": 500.0, "width": 5.0})

    def test_duplicate_feature_rejected(self):
        with pytest.raises(SpecificationError):
            DesignSpecification([RangeFeature("f", "a", hi=1.0),
                                 RangeFeature("f", "b", hi=1.0)])

    def test_lookup(self):
        spec = self._spec()
        assert spec.feature("area-limit").attr == "area"
        assert "area-limit" in spec
        with pytest.raises(SpecificationError):
            spec.feature("nope")

    def test_with_feature_adds(self):
        spec = self._spec()
        extended = spec.with_feature(RangeFeature("h", "height", hi=5.0))
        assert len(extended) == 3
        assert len(spec) == 2  # original untouched

    def test_with_feature_rejects_existing(self):
        spec = self._spec()
        with pytest.raises(SpecificationError):
            spec.with_feature(RangeFeature("area-limit", "area", hi=1.0))

    def test_with_restricted(self):
        spec = self._spec()
        tightened = spec.with_restricted(
            RangeFeature("area-limit", "area", hi=50.0))
        assert tightened.feature("area-limit").hi == 50.0

    def test_with_restricted_rejects_widening(self):
        spec = self._spec()
        with pytest.raises(SpecificationError):
            spec.with_restricted(
                RangeFeature("area-limit", "area", hi=500.0))

    def test_replaced_allows_widening(self):
        """Super-DAs may reformulate goals arbitrarily (Fig.5)."""
        spec = self._spec()
        widened = spec.replaced(
            RangeFeature("area-limit", "area", hi=500.0))
        assert widened.feature("area-limit").hi == 500.0

    def test_replaced_adds_when_absent(self):
        spec = self._spec()
        extended = spec.replaced(RangeFeature("new", "n", hi=1.0))
        assert "new" in extended


class TestRefinement:
    def test_refines_by_addition(self):
        base = DesignSpecification([RangeFeature("a", "x", hi=10.0)])
        refined = base.with_feature(RangeFeature("b", "y", hi=5.0))
        assert refined.refines(base)
        assert not base.refines(refined)

    def test_refines_by_restriction(self):
        base = DesignSpecification([RangeFeature("a", "x", hi=10.0)])
        refined = base.with_restricted(RangeFeature("a", "x", hi=5.0))
        assert refined.refines(base)

    def test_widening_is_not_refinement(self):
        base = DesignSpecification([RangeFeature("a", "x", hi=10.0)])
        widened = base.replaced(RangeFeature("a", "x", hi=50.0))
        assert not widened.refines(base)

    def test_dropping_feature_is_not_refinement(self):
        base = DesignSpecification([RangeFeature("a", "x", hi=10.0),
                                    RangeFeature("b", "y", hi=5.0)])
        partial = DesignSpecification([RangeFeature("a", "x", hi=10.0)])
        assert not partial.refines(base)

    def test_spec_refines_itself(self):
        base = DesignSpecification([RangeFeature("a", "x", hi=10.0)])
        assert base.refines(base)
