"""Edge-case and failure-injection tests spanning multiple levels."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.core.states import DaState
from repro.dc.design_manager import DesignerPolicy
from repro.dc.script import DopStep, Parallel, Script, Sequence
from repro.util.errors import RpcError, TransactionStateError
from repro.vlsi.tools import vlsi_dots

NOOP = Script(Sequence(DopStep("structure_synthesis")), "noop")


def build(workstations=("ws-1",)):
    system = make_vlsi_system(workstations)
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", NOOP, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b", "c"]}})
    system.start(top.da_id)
    return system, dots, top


class TestServerDownDuringTeOperations:
    def test_checkout_fails_when_server_down(self):
        system, __, top = build()
        client_tm = system.runtime(top.da_id).client_tm
        dop = client_tm.begin_dop(top.da_id, "structure_synthesis")
        system.crash_server()
        with pytest.raises(RpcError):
            client_tm.checkout(dop, top.vector.initial_dov)
        system.restart_server()
        # after the restart the same checkout succeeds
        fetched = client_tm.checkout(dop, top.vector.initial_dov)
        assert fetched.dov_id == top.vector.initial_dov
        client_tm.abort_dop(dop, "test")

    def test_checkin_2pc_aborts_when_server_down(self):
        system, __, top = build()
        client_tm = system.runtime(top.da_id).client_tm
        dop = client_tm.begin_dop(top.da_id, "structure_synthesis")
        client_tm.checkout(dop, top.vector.initial_dov)
        system.crash_server()
        with pytest.raises(RpcError):
            client_tm.checkin(dop, "Chip")
        system.restart_server()
        # repository has no trace of the attempted checkin
        assert len(system.repository.graph(top.da_id)) == 1


class TestSuspendAcrossCrash:
    def test_suspended_dop_survives_workstation_crash(self):
        """Suspend persists the context; a crash during the suspension
        loses nothing."""
        system, __, top = build()
        client_tm = system.runtime(top.da_id).client_tm
        dop = client_tm.begin_dop(top.da_id, "structure_synthesis")
        client_tm.checkout(dop, top.vector.initial_dov)
        client_tm.work(dop, 20.0,
                       mutate=lambda c: c.tool_state.update(step=1))
        client_tm.suspend(dop)
        system.crash_workstation("ws-1")
        system.network.restart_node("ws-1")
        recovered, __t = client_tm.recover_dop(
            dop.dop_id, top.da_id, "structure_synthesis")
        assert recovered.context.work_done == 20.0
        assert recovered.context.tool_state == {"step": 1}

    def test_double_suspend_rejected(self):
        system, __, top = build()
        client_tm = system.runtime(top.da_id).client_tm
        dop = client_tm.begin_dop(top.da_id, "structure_synthesis")
        client_tm.suspend(dop)
        with pytest.raises(TransactionStateError):
            client_tm.suspend(dop)


class TestParallelScriptExecution:
    def test_parallel_branches_complete(self):
        system = make_vlsi_system(("ws-1",), trace=False)
        system.tools.register("t-a", lambda c, p: c.data.update(
            cell="x", level="chip"), 5.0)
        system.tools.register("t-b", lambda c, p: c.data.update(
            cell="x", level="chip"), 5.0)
        dots = vlsi_dots()
        script = Script(Parallel(DopStep("t-a"), DopStep("t-b")))
        from repro.core.features import DesignSpecification
        da = system.init_design(dots["Chip"], DesignSpecification([]),
                                "d", script, "ws-1",
                                initial_data={"cell": "c",
                                              "level": "chip"})
        system.start(da.da_id)
        status = system.run(da.da_id)
        assert status.done
        dm = system.runtime(da.da_id).dm
        assert sorted(dm.executed_tools) == ["t-a", "t-b"]

    def test_policy_chooses_branch_order(self):
        system = make_vlsi_system(("ws-1",), trace=False)
        system.tools.register("t-a", lambda c, p: c.data.update(
            cell="x", level="chip"), 5.0)
        system.tools.register("t-b", lambda c, p: c.data.update(
            cell="x", level="chip"), 5.0)
        dots = vlsi_dots()

        class PreferB(DesignerPolicy):
            def choose_enabled(self, actions):
                by_tool = {a.tool: a for a in actions}
                return by_tool.get("t-b", actions[0])

        from repro.core.features import DesignSpecification
        da = system.init_design(dots["Chip"], DesignSpecification([]),
                                "d",
                                Script(Parallel(DopStep("t-a"),
                                                DopStep("t-b"))),
                                "ws-1",
                                initial_data={"cell": "c",
                                              "level": "chip"})
        system.start(da.da_id)
        system.run(da.da_id, policy=PreferB())
        dm = system.runtime(da.da_id).dm
        assert dm.executed_tools == ["t-b", "t-a"]


class TestCmEdgeCases:
    def test_propagate_while_ready_for_termination(self):
        """Fig.7 allows Propagate in ready_for_termination — the final
        result may still be pre-released to peers."""
        system, dots, top = build(("ws-1", "ws-2", "ws-3"))
        supplier = system.create_sub_da(top.da_id, dots["Module"],
                                        chip_spec(50, 50), "s", NOOP,
                                        "ws-2")
        consumer = system.create_sub_da(top.da_id, dots["Module"],
                                        chip_spec(50, 50), "c", NOOP,
                                        "ws-3")
        system.start(supplier.da_id)
        system.start(consumer.da_id)
        dov = system.repository.checkin(
            supplier.da_id, "Module",
            {"cell": "m", "level": "module", "width": 10.0,
             "height": 10.0, "area": 100.0})
        system.cm.evaluate(supplier.da_id, dov.dov_id)
        system.cm.require(consumer.da_id, supplier.da_id,
                          {"width-limit"})
        system.cm.sub_da_ready_to_commit(supplier.da_id)
        assert supplier.state is DaState.READY_FOR_TERMINATION
        receivers = system.cm.propagate(supplier.da_id, dov.dov_id)
        assert receivers == [consumer.da_id]

    def test_repeated_propagate_is_idempotent(self):
        system, dots, top = build(("ws-1", "ws-2", "ws-3"))
        supplier = system.create_sub_da(top.da_id, dots["Module"],
                                        chip_spec(50, 50), "s", NOOP,
                                        "ws-2")
        consumer = system.create_sub_da(top.da_id, dots["Module"],
                                        chip_spec(50, 50), "c", NOOP,
                                        "ws-3")
        system.start(supplier.da_id)
        system.start(consumer.da_id)
        dov = system.repository.checkin(
            supplier.da_id, "Module",
            {"cell": "m", "level": "module", "width": 10.0,
             "height": 10.0, "area": 100.0})
        system.cm.require(consumer.da_id, supplier.da_id,
                          {"width-limit"})
        first = system.cm.propagate(supplier.da_id, dov.dov_id)
        second = system.cm.propagate(supplier.da_id, dov.dov_id)
        assert first == [consumer.da_id]
        assert second == []       # already delivered
        usage = system.cm.usage(consumer.da_id, supplier.da_id)
        assert usage.delivered == [dov.dov_id]

    def test_deep_hierarchy_scope_devolution(self):
        """Final DOVs climb a three-level hierarchy step by step."""
        system, dots, top = build(("ws-1",))
        module = system.create_sub_da(top.da_id, dots["Module"],
                                      chip_spec(50, 50), "m", NOOP,
                                      "ws-1")
        system.start(module.da_id)
        block = system.create_sub_da(module.da_id, dots["Block"],
                                     chip_spec(20, 20), "b", NOOP,
                                     "ws-1")
        system.start(block.da_id)
        dov = system.repository.checkin(
            block.da_id, "Block",
            {"cell": "k", "level": "block", "width": 5.0,
             "height": 5.0, "area": 25.0})
        system.cm.evaluate(block.da_id, dov.dov_id)
        system.cm.sub_da_ready_to_commit(block.da_id)
        system.cm.terminate_sub_da(module.da_id, block.da_id)
        assert system.cm.in_scope(module.da_id, dov.dov_id)
        assert not system.cm.in_scope(top.da_id, dov.dov_id)
        # the module adopts it as final work and devolves it upward
        system.cm.evaluate(module.da_id, dov.dov_id)
        system.cm.sub_da_ready_to_commit(module.da_id)
        system.cm.terminate_sub_da(top.da_id, module.da_id)
        assert system.cm.in_scope(top.da_id, dov.dov_id)
