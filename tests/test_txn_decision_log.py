"""The global decision log and the federated atomic commit.

PR-5 acceptance surface at the repository/federation level: a
cross-member ``commit_group`` is all-or-nothing under member crashes —
the durable decision record, not the member's luck, determines the
batch's fate.  Presumed abort: a logged COMMIT decision is redone from
the member's forced prepare record at recovery; a missing decision
record *means* abort and nothing survives.
"""

from __future__ import annotations

import pytest

from repro.net.two_phase_commit import Decision
from repro.repository.federation import FederatedRepository
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.txn import GlobalDecisionLog
from repro.util.errors import StorageError
from repro.util.ids import IdGenerator


class TestGlobalDecisionLog:
    def test_record_is_one_forced_write(self):
        log = GlobalDecisionLog()
        forced = log.wal.forced_writes
        log.record("gtxn-1", {"site-a": ["dov-1"], "site-b": ["dov-2"]})
        assert log.wal.forced_writes == forced + 1
        assert log.decision_for("gtxn-1") is Decision.COMMIT
        assert log.manifest("gtxn-1") == {"site-a": ["dov-1"],
                                          "site-b": ["dov-2"]}

    def test_record_is_idempotent(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        forced = log.wal.forced_writes
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        assert log.wal.forced_writes == forced

    def test_presumed_abort_resolution(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        assert log.resolve("gtxn-1") is Decision.COMMIT
        # never recorded: a missing record MEANS abort
        assert log.resolve("gtxn-never") is Decision.ABORT

    def test_completion_and_recovery(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        log.record("gtxn-2", {"site-b": ["dov-2"]})
        log.mark_complete("gtxn-1")
        assert log.incomplete() == ["gtxn-2"]
        # completion records are un-forced: a crash drops the tail,
        # the decisions themselves survive
        log.wal.crash()
        recovered = log.recover()
        assert recovered == 2
        assert log.resolve("gtxn-2") is Decision.COMMIT
        # gtxn-1's completion marker was forced along with gtxn-2's
        # decision record (the force flushes the whole tail)
        assert "gtxn-2" in log.incomplete()

    def test_decisions_in_log_order(self):
        log = GlobalDecisionLog()
        for index in range(3):
            log.record(f"gtxn-{index}", {"m": [f"dov-{index}"]})
        assert log.decisions() == ["gtxn-0", "gtxn-1", "gtxn-2"]


def make_federation(members: int = 2):
    ids = IdGenerator()
    federation = FederatedRepository({
        f"site-{index}": DesignDataRepository(ids)
        for index in range(members)})
    federation.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)]))
    roots = {}
    for index in range(members):
        da_id = f"da-{index}"
        federation.assign(da_id, f"site-{index}")
        federation.create_graph(da_id)
        roots[da_id] = federation.checkin(
            da_id, "Cell", {"area": float(index)}, ()).dov_id
    return federation, roots


def stage_cross_batch(federation, roots, area: float = 50.0):
    staged = []
    for da_id, root in sorted(roots.items()):
        dov = federation.stage_checkin(
            da_id, "Cell", {"area": area}, (root,), created_at=1.0)
        staged.append(dov.dov_id)
    return staged


class TestFederatedAtomicCommit:
    def test_cross_member_batch_commits_with_one_decision(self):
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)
        committed = federation.commit_group(staged)
        assert [dov.dov_id for dov in committed] == staged
        assert federation.decision_log.stats()["decisions"] == 1
        assert federation.decision_log.incomplete() == []
        for dov_id in staged:
            assert dov_id in federation

    def test_single_member_batch_skips_the_global_protocol(self):
        federation, roots = make_federation()
        dov = federation.stage_checkin("da-0", "Cell", {"area": 9.0},
                                       (roots["da-0"],), 1.0)
        federation.commit_group([dov.dov_id])
        assert federation.decision_log.stats()["decisions"] == 0
        assert dov.dov_id in federation

    def test_member_down_during_prepare_aborts_everywhere(self):
        """Presumed abort: no decision record, no survivors."""
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)
        federation.crash_member("site-1")
        with pytest.raises(StorageError):
            federation.commit_group(staged)
        # nothing was logged, nothing is durable, survivors un-staged
        assert federation.decision_log.stats()["decisions"] == 0
        assert staged[0] not in federation.member("site-0").store
        assert not federation.member("site-0").store.staged_ids()
        federation.recover_member("site-1")
        for dov_id in staged:
            assert dov_id not in federation

    def test_member_crash_after_decision_is_redone_at_recovery(self):
        """The logged decision completes at the crashed member."""
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)

        def crash_site_1(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            federation.crash_member("site-1")

        federation.decision_log.on_decision = crash_site_1
        committed = federation.commit_group(staged)
        # the live member committed its portion now ...
        live = {dov.dov_id for dov in committed}
        assert staged[0] in live and staged[1] not in live
        assert federation.decision_log.incomplete() != []
        # ... and recovery completes the crashed member's portion
        report = federation.recover_member("site-1")
        assert report["redone_batches"] == 1
        for dov_id in staged:
            assert dov_id in federation
        assert federation.decision_log.incomplete() == []
        # the redone version is read back with the shipped payload
        assert federation.read(staged[1]).data["area"] == 50.0

    def test_coordinator_crash_between_decision_and_notification(self):
        """Recovery must complete the logged decision (satellite)."""
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)

        class Boom(RuntimeError):
            pass

        def die(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            raise Boom(gtxn_id)

        federation.decision_log.on_decision = die
        with pytest.raises(Boom):
            federation.commit_group(staged)
        # the decision is durable; no participant was told
        assert federation.decision_log.incomplete() != []
        for dov_id in staged:
            assert dov_id not in federation
        # coordinator restart: the logged decision completes
        assert federation.resolve_incomplete() == 1
        for dov_id in staged:
            assert dov_id in federation

    def test_redo_survives_a_second_crash(self):
        """Redo is idempotent and re-durable: crash, recover (redo),
        crash again, recover again — the batch stays committed."""
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)

        def crash_site_1(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            federation.crash_member("site-1")

        federation.decision_log.on_decision = crash_site_1
        federation.commit_group(staged)
        federation.recover_member("site-1")
        assert staged[1] in federation
        federation.crash_member("site-1")
        report = federation.recover_member("site-1")
        # the redo wrote fresh DOV_CHECKIN records + commit marker, so
        # the second recovery replays them as ordinary durable state
        assert report["redone_batches"] == 0
        assert staged[1] in federation

    def test_whole_site_recovery_settles_in_doubt_batches(self):
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)

        def crash_site_1(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            federation.crash_member("site-1")

        federation.decision_log.on_decision = crash_site_1
        federation.commit_group(staged)
        federation.crash_member("site-0")
        totals = federation.recover()
        assert totals["redone_batches"] == 1
        for dov_id in staged:
            assert dov_id in federation

    def test_whole_site_crash_rebuilds_the_decision_log_itself(self):
        """A whole-site failure crashes the coordinator state too: the
        in-memory maps die with it, and recovery rebuilds them from
        the forced decision records before settling in-doubt work."""
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)

        def crash_site_1(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            federation.crash_member("site-1")

        federation.decision_log.on_decision = crash_site_1
        federation.commit_group(staged)
        report = federation.crash()
        # completion markers ride the un-forced tail; the decision
        # records themselves were forced and survive
        assert federation.decision_log.decision_for("gtxn-1") is None
        totals = federation.recover()
        assert totals["decisions_recovered"] == 1
        assert totals["redone_batches"] == 1
        for dov_id in staged:
            assert dov_id in federation
        assert report["staged_lost"] >= 0  # crash report shape holds

    def test_stats_surface_the_decision_log(self):
        federation, roots = make_federation()
        staged = stage_cross_batch(federation, roots)
        federation.commit_group(staged)
        stats = federation.stats()
        assert stats["decision_log"]["decisions"] == 1
        assert stats["redone_batches"] == 0


class TestCheckpointTruncation:
    def test_checkpoint_forgets_completed_keeps_incomplete(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        log.record("gtxn-2", {"site-b": ["dov-2"]})
        log.mark_complete("gtxn-1")
        result = log.checkpoint()
        assert result == {"live": 1, "forgotten": 1,
                          "truncated": result["truncated"]}
        assert result["truncated"] >= 2
        assert log.decisions() == ["gtxn-2"]
        assert log.incomplete() == ["gtxn-2"]
        # behind the frontier presumed abort answers by construction
        assert log.resolve("gtxn-1") is Decision.ABORT
        assert log.resolve("gtxn-2") is Decision.COMMIT
        assert log.manifest("gtxn-2") == {"site-b": ["dov-2"]}

    def test_checkpoint_is_one_forced_write(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        log.mark_complete("gtxn-1")
        forced = log.wal.forced_writes
        log.checkpoint()
        assert log.wal.forced_writes == forced + 1
        assert log.stats()["wal_records"] == 1  # checkpoint only

    def test_recovery_restarts_from_the_checkpoint(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        log.mark_complete("gtxn-1")
        log.record("gtxn-2", {"site-b": ["dov-2"]})
        log.checkpoint()
        log.record("gtxn-3", {"site-a": ["dov-3"]})
        log.crash()
        assert log.recover() == 2
        assert log.decisions() == ["gtxn-2", "gtxn-3"]
        assert log.incomplete() == ["gtxn-2", "gtxn-3"]
        assert log.resolve("gtxn-1") is Decision.ABORT

    def test_crash_between_checkpoint_and_truncate_is_idempotent(self):
        """The CHECKPOINT record subsumes everything behind it: if the
        truncation never happens, recovery still lands on the same
        state — the stale records are replayed, then reset."""
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        log.mark_complete("gtxn-1")
        log.record("gtxn-2", {"site-b": ["dov-2"]})

        original_truncate = log.wal.truncate
        log.wal.truncate = lambda up_to_lsn: (_ for _ in ()).throw(
            StorageError("crash mid-truncation"))
        with pytest.raises(StorageError):
            log.checkpoint()
        log.wal.truncate = original_truncate

        log.crash()
        log.recover()
        assert log.decisions() == ["gtxn-2"]
        assert log.incomplete() == ["gtxn-2"]
        assert log.resolve("gtxn-1") is Decision.ABORT

    def test_auto_checkpoint_interval_bounds_the_log(self):
        window = 3
        log = GlobalDecisionLog(checkpoint_interval=window)
        peak = 0
        for index in range(10):
            gtxn = f"gtxn-{index}"
            log.record(gtxn, {"site-a": [f"dov-{index}"]})
            log.mark_complete(gtxn)
            peak = max(peak, log.stats()["wal_records"])
        assert log.stats()["truncations"] == 3
        assert log.stats()["forgotten_decisions"] == 9
        assert peak <= 2 * window
        # the one decision past the last frontier is still retained
        assert log.decisions() == ["gtxn-9"]

    def test_incomplete_is_a_stable_copy(self):
        log = GlobalDecisionLog()
        log.record("gtxn-1", {"site-a": ["dov-1"]})
        view = log.incomplete()
        view.append("gtxn-bogus")
        assert log.incomplete() == ["gtxn-1"]
        snapshot = log.decisions()
        snapshot.clear()
        assert log.decisions() == ["gtxn-1"]
