"""Coordinator-loss matrix for the federated atomic commit.

The federation's coordinator state — the placement index and the
decision log's in-memory maps — is volatile by design.  These tests
crash it at every interesting point of the commit protocol (before
prepare, between prepare and decide, after decide, during decision-log
truncation) and assert the two invariants the production-federation
arc promises:

* **no lost or duplicated commits** — every version of a decided batch
  is durable at exactly one member, every version of an undecided
  batch at none;
* **directory equality** — the placement index rebuilt from the
  members alone (:meth:`recover_directory`) equals the live directory,
  after every case.
"""

from __future__ import annotations

import pytest

from repro.net.two_phase_commit import Decision
from repro.repository.federation import FederatedRepository
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.txn.decision_log import GlobalDecisionLog
from repro.util.errors import StorageError
from repro.util.ids import IdGenerator

MEMBERS = 3


class _CoordinatorDied(RuntimeError):
    """Injected coordinator failure."""


def make_federation(decision_log: GlobalDecisionLog | None = None,
                    placement: str = "directory",
                    ) -> tuple[FederatedRepository, dict[str, str]]:
    """A federation with one DA per member and one durable version
    each; returns it plus the current per-DA head versions."""
    ids = IdGenerator()
    federation = FederatedRepository(
        {f"site-{index}": DesignDataRepository(ids)
         for index in range(MEMBERS)},
        decision_log=decision_log, placement=placement)
    federation.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)]))
    heads: dict[str, str] = {}
    for index in range(MEMBERS):
        da_id = f"da-{index}"
        federation.assign(da_id, f"site-{index}")
        federation.create_graph(da_id)
        heads[da_id] = federation.checkin(
            da_id, "Cell", {"area": float(index)}).dov_id
    return federation, heads


def stage_batch(federation: FederatedRepository,
                heads: dict[str, str], rev: int) -> list[str]:
    """One cross-member batch: a derived version per DA."""
    staged = []
    for index in range(MEMBERS):
        da_id = f"da-{index}"
        dov = federation.stage_checkin(
            da_id, "Cell", {"area": index + rev * 10.0},
            (heads[da_id],), created_at=float(rev))
        staged.append(dov.dov_id)
    return staged


def commit_batch(federation: FederatedRepository,
                 heads: dict[str, str], rev: int) -> list[str]:
    staged = stage_batch(federation, heads, rev)
    for dov in federation.commit_group(staged):
        heads[dov.created_by] = dov.dov_id
    return staged


def durable_copies(federation: FederatedRepository,
                   dov_id: str) -> int:
    """How many members durably hold *dov_id* (must be 0 or 1)."""
    return sum(1 for member in federation.members().values()
               if dov_id in member.store)


def assert_directory_rebuild_equal(
        federation: FederatedRepository) -> None:
    """The core rebuild claim: the index reconstructed from the
    members alone equals the live one, on every surface."""
    directory = federation.directory_snapshot()
    homes = federation.placement_index.homes()
    stats = federation.placement_index.stats()
    federation.recover_directory()
    assert federation.directory_snapshot() == directory
    assert federation.placement_index.homes() == homes
    assert federation.placement_index.stats() == stats


class TestCrashBeforePrepare:
    def test_staged_batch_survives_a_coordinator_loss(self):
        """Coordinator dies with a batch staged but no prepare sent:
        the staged-home index is rebuilt from the members' staged
        sets, and the batch then commits exactly once."""
        federation, heads = make_federation()
        staged = stage_batch(federation, heads, rev=1)
        directory_before = federation.directory_snapshot()
        federation.crash_coordinator()
        assert federation.placement_index.stats()["staged_index"] == 0
        federation.recover_coordinator()
        assert federation.directory_snapshot() == directory_before
        committed = federation.commit_group(staged)
        assert [dov.dov_id for dov in committed] == staged
        for dov_id in staged:
            assert durable_copies(federation, dov_id) == 1
        assert_directory_rebuild_equal(federation)


class TestCrashBetweenPrepareAndDecide:
    def test_undecided_batch_aborts_everywhere(self):
        """The whole site (coordinator + members) dies after every
        member prepared but before the decision record: presumed
        abort — recovery settles the prepared groups as aborted,
        nothing of the batch is durable anywhere, and a retry commits
        exactly once."""
        federation, heads = make_federation()
        commit_batch(federation, heads, rev=1)

        def die_before_decision(gtxn_id, manifest):
            raise _CoordinatorDied(gtxn_id)

        federation.decision_log.record = die_before_decision
        staged = stage_batch(federation, heads, rev=2)
        with pytest.raises(_CoordinatorDied):
            federation.commit_group(staged)
        del federation.decision_log.record  # restore the class method
        federation.crash()
        federation.recover()
        # no decision record means abort: the members' in-doubt
        # queries resolved to ABORT and the staged portions died
        for dov_id in staged:
            assert durable_copies(federation, dov_id) == 0
        gtxn = f"gtxn-{federation._next_gtxn}"
        assert federation.decision_log.resolve(gtxn) is Decision.ABORT
        # rev-1 survived intact, and a retried batch lands exactly once
        retried = commit_batch(federation, heads, rev=2)
        for dov_id in retried:
            assert durable_copies(federation, dov_id) == 1
        assert_directory_rebuild_equal(federation)


class TestCrashAfterDecide:
    def test_logged_decision_completes_after_recovery(self):
        """Coordinator dies after forcing the decision, before any
        member is told: the decision record is the commit point, so
        recovery finishes the batch — exactly once."""
        federation, heads = make_federation()
        commit_batch(federation, heads, rev=1)

        def die_after_decision(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            raise _CoordinatorDied(gtxn_id)

        federation.decision_log.on_decision = die_after_decision
        staged = stage_batch(federation, heads, rev=2)
        with pytest.raises(_CoordinatorDied):
            federation.commit_group(staged)
        federation.crash_coordinator()
        report = federation.recover_coordinator()
        assert report["decisions_recovered"] >= 1
        assert report["settled"] == 1
        for dov_id in staged:
            assert durable_copies(federation, dov_id) == 1
        assert federation.decision_log.incomplete() == []
        assert_directory_rebuild_equal(federation)

    def test_decided_batch_is_not_reapplied_twice(self):
        """Running resolve_incomplete again after the batch settled
        must not duplicate any version."""
        federation, heads = make_federation()

        def die_after_decision(gtxn_id, manifest):
            federation.decision_log.on_decision = None
            raise _CoordinatorDied(gtxn_id)

        federation.decision_log.on_decision = die_after_decision
        staged = stage_batch(federation, heads, rev=1)
        with pytest.raises(_CoordinatorDied):
            federation.commit_group(staged)
        federation.crash_coordinator()
        federation.recover_coordinator()
        assert federation.resolve_incomplete() == 0
        for dov_id in staged:
            assert durable_copies(federation, dov_id) == 1


class TestCrashDuringTruncation:
    def test_checkpoint_interrupted_mid_truncate_recovers(self):
        """The coordinator dies after forcing the CHECKPOINT record
        but before the truncation completes: recovery starts from the
        checkpoint (the stale records behind it are subsumed), nothing
        is lost or duplicated, and the next checkpoint truncates."""
        log = GlobalDecisionLog()
        federation, heads = make_federation(decision_log=log)
        for rev in range(1, 4):
            commit_batch(federation, heads, rev)
        committed_so_far = {dov_id for member
                            in federation.members().values()
                            for dov_id in
                            (dov.dov_id for dov in member.store)}

        original_truncate = log.wal.truncate
        log.wal.truncate = lambda up_to_lsn: (_ for _ in ()).throw(
            StorageError("disk died mid-truncation"))
        with pytest.raises(StorageError):
            log.checkpoint()
        log.wal.truncate = original_truncate

        federation.crash_coordinator()
        federation.recover_coordinator()
        # the checkpoint carried no live decisions (all batches were
        # complete), so recovery starts empty past it
        assert log.incomplete() == []
        for dov_id in committed_so_far:
            assert durable_copies(federation, dov_id) == 1
        # post-recovery batches decide, complete and truncate normally
        commit_batch(federation, heads, rev=4)
        result = log.checkpoint()
        assert result["truncated"] >= 1
        assert log.stats()["wal_records"] == 1  # just the checkpoint
        assert_directory_rebuild_equal(federation)

    def test_bounded_log_across_cycles(self):
        """>= 3 auto-checkpoint cycles: the record count never exceeds
        twice the frontier window, and in-doubt resolution still works
        over the truncated log."""
        window = 4
        log = GlobalDecisionLog(checkpoint_interval=window)
        federation, heads = make_federation(decision_log=log)
        peak = 0
        for rev in range(1, 3 * window + 2):
            commit_batch(federation, heads, rev)
            peak = max(peak, log.stats()["wal_records"])
        assert log.stats()["truncations"] >= 3
        assert peak <= 2 * window
        federation.crash_coordinator()
        federation.recover_coordinator()
        assert log.incomplete() == []
        assert_directory_rebuild_equal(federation)


class TestWholeSiteLoss:
    def test_site_recovery_rebuilds_everything(self):
        """Members + coordinator all die: the directory, staged index
        and DA homes come back from the member WALs alone."""
        federation, heads = make_federation()
        commit_batch(federation, heads, rev=1)
        directory_before = federation.directory_snapshot()
        homes_before = federation.placement_index.homes()
        federation.crash()
        assert federation.directory_snapshot() == {}
        federation.recover()
        assert federation.directory_snapshot() == directory_before
        assert federation.placement_index.homes() == homes_before
        commit_batch(federation, heads, rev=2)
        assert_directory_rebuild_equal(federation)
