"""Integration tests for negotiation relationships (Sect.4.1)."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.core.features import RangeFeature
from repro.core.states import DaState
from repro.dc.script import DopStep, Script, Sequence
from repro.util.errors import NegotiationError
from repro.vlsi.tools import vlsi_dots

NOOP = Script(Sequence(DopStep("structure_synthesis")), "noop")


@pytest.fixture
def rig():
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", NOOP, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b"]}})
    system.start(top.da_id)
    sub_a = system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(60, 60), "a", NOOP, "ws-2")
    sub_b = system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(60, 60), "b", NOOP, "ws-3")
    system.start(sub_a.da_id)
    system.start(sub_b.da_id)
    return system, top, sub_a, sub_b


def border_proposal(system, sub_a, sub_b, a_width=70.0, total=100.0):
    return system.cm.propose(
        sub_a.da_id, sub_b.da_id,
        changes={
            sub_a.da_id: [RangeFeature("width-limit", "width",
                                       hi=a_width)],
            sub_b.da_id: [RangeFeature("width-limit", "width",
                                       hi=total - a_width)],
        }, note="move the borderline")


class TestEstablishment:
    def test_super_creates_relationship(self, rig):
        system, top, sub_a, sub_b = rig
        negotiation = system.cm.create_negotiation_relationship(
            top.da_id, sub_a.da_id, sub_b.da_id, subject="border")
        assert negotiation.involves(sub_a.da_id)
        assert negotiation.other(sub_a.da_id) == sub_b.da_id
        # creating the relationship does not suspend the parties
        assert sub_a.state is DaState.ACTIVE

    def test_only_common_super_may_create(self, rig):
        system, __, sub_a, sub_b = rig
        with pytest.raises(NegotiationError):
            system.cm.create_negotiation_relationship(
                sub_a.da_id, sub_a.da_id, sub_b.da_id)

    def test_non_siblings_rejected(self, rig):
        system, top, sub_a, __ = rig
        dots = vlsi_dots()
        grandchild = system.create_sub_da(sub_a.da_id, dots["Block"],
                                          chip_spec(10, 10), "g", NOOP,
                                          "ws-2")
        system.start(grandchild.da_id)
        with pytest.raises(NegotiationError):
            system.cm.propose(grandchild.da_id, top.da_id, changes={})

    def test_propose_establishes_dynamically(self, rig):
        system, __, sub_a, sub_b = rig
        border_proposal(system, sub_a, sub_b)
        assert len(system.cm.negotiations_of(sub_a.da_id)) == 1


class TestProposeAgree:
    def test_propose_suspends_both(self, rig):
        system, __, sub_a, sub_b = rig
        border_proposal(system, sub_a, sub_b)
        assert sub_a.state is DaState.NEGOTIATING
        assert sub_b.state is DaState.NEGOTIATING
        messages = system.cm.pop_messages(sub_b.da_id, "proposal")
        assert len(messages) == 1

    def test_agree_applies_changes_and_resumes(self, rig):
        system, __, sub_a, sub_b = rig
        proposal = border_proposal(system, sub_a, sub_b, a_width=70.0)
        system.cm.agree(sub_b.da_id, proposal.proposal_id)
        assert sub_a.state is DaState.ACTIVE
        assert sub_b.state is DaState.ACTIVE
        assert sub_a.spec.feature("width-limit").hi == 70.0
        assert sub_b.spec.feature("width-limit").hi == 30.0

    def test_proposer_cannot_agree_to_own(self, rig):
        system, __, sub_a, sub_b = rig
        proposal = border_proposal(system, sub_a, sub_b)
        with pytest.raises(NegotiationError):
            system.cm.agree(sub_a.da_id, proposal.proposal_id)

    def test_one_open_proposal_at_a_time(self, rig):
        system, __, sub_a, sub_b = rig
        border_proposal(system, sub_a, sub_b)
        with pytest.raises(NegotiationError):
            border_proposal(system, sub_a, sub_b)

    def test_agree_twice_rejected(self, rig):
        system, __, sub_a, sub_b = rig
        proposal = border_proposal(system, sub_a, sub_b)
        system.cm.agree(sub_b.da_id, proposal.proposal_id)
        with pytest.raises(NegotiationError):
            system.cm.agree(sub_b.da_id, proposal.proposal_id)


class TestDisagreeAndCounter:
    def test_disagree_keeps_negotiating(self, rig):
        system, __, sub_a, sub_b = rig
        proposal = border_proposal(system, sub_a, sub_b)
        system.cm.disagree(sub_b.da_id, proposal.proposal_id)
        assert sub_a.state is DaState.NEGOTIATING
        assert sub_b.state is DaState.NEGOTIATING
        messages = system.cm.pop_messages(sub_a.da_id, "disagree")
        assert len(messages) == 1

    def test_counter_proposal_after_disagree(self, rig):
        system, __, sub_a, sub_b = rig
        first = border_proposal(system, sub_a, sub_b, a_width=80.0)
        system.cm.disagree(sub_b.da_id, first.proposal_id)
        counter = border_proposal(system, sub_a, sub_b, a_width=60.0)
        system.cm.agree(sub_b.da_id, counter.proposal_id)
        negotiation = system.cm.negotiations_of(sub_a.da_id)[0]
        assert negotiation.rounds() == 2
        assert sub_a.spec.feature("width-limit").hi == 60.0

    def test_b_may_counter_propose(self, rig):
        system, __, sub_a, sub_b = rig
        first = border_proposal(system, sub_a, sub_b, a_width=80.0)
        system.cm.disagree(sub_b.da_id, first.proposal_id)
        counter = system.cm.propose(
            sub_b.da_id, sub_a.da_id,
            changes={sub_b.da_id: [RangeFeature("width-limit", "width",
                                                hi=50.0)],
                     sub_a.da_id: [RangeFeature("width-limit", "width",
                                                hi=50.0)]})
        system.cm.agree(sub_a.da_id, counter.proposal_id)
        assert sub_a.spec.feature("width-limit").hi == 50.0


class TestEscalation:
    def test_conflict_escalates_to_super(self, rig):
        system, top, sub_a, sub_b = rig
        proposal = border_proposal(system, sub_a, sub_b)
        system.cm.disagree(sub_b.da_id, proposal.proposal_id)
        negotiation = system.cm.negotiations_of(sub_a.da_id)[0]
        super_id = system.cm.sub_das_specification_conflict(
            sub_a.da_id, negotiation.negotiation_id)
        assert super_id == top.da_id
        assert sub_a.state is DaState.ACTIVE
        assert sub_b.state is DaState.ACTIVE
        assert negotiation.escalations == 1
        messages = system.cm.pop_messages(top.da_id,
                                          "specification_conflict")
        assert len(messages) == 1

    def test_super_resolves_via_modification(self, rig):
        """The paper's resolution path: after escalation the super-DA
        modifies both specs (the Fig.5 more-area/less-area move)."""
        system, top, sub_a, sub_b = rig
        proposal = border_proposal(system, sub_a, sub_b)
        system.cm.disagree(sub_b.da_id, proposal.proposal_id)
        negotiation = system.cm.negotiations_of(sub_a.da_id)[0]
        system.cm.sub_das_specification_conflict(
            sub_a.da_id, negotiation.negotiation_id)
        system.cm.modify_sub_da_specification(top.da_id, sub_a.da_id,
                                              chip_spec(70, 100))
        system.cm.modify_sub_da_specification(top.da_id, sub_b.da_id,
                                              chip_spec(30, 100))
        assert sub_a.spec.feature("width-limit").hi == 70.0
        assert sub_b.spec.feature("width-limit").hi == 30.0

    def test_outsider_cannot_escalate(self, rig):
        system, top, sub_a, sub_b = rig
        border_proposal(system, sub_a, sub_b)
        negotiation = system.cm.negotiations_of(sub_a.da_id)[0]
        with pytest.raises(NegotiationError):
            system.cm.sub_das_specification_conflict(
                top.da_id, negotiation.negotiation_id)
