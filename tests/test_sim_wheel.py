"""Timer-wheel edge cases: cancellation, renewal races, cascades,
tie-order — the determinism surface of the PR 7 kernel rebuild."""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, Timer
from repro.sim.scheduler import EventScheduler, _ScheduledEvent, \
    kernel_fast_path
from repro.sim.wheel import HierarchicalTimerWheel
from repro.txn.leases import LeaseTable, lease_fast_path


def _entry(time: float, seq: int, priority: int = 0) -> tuple:
    event = _ScheduledEvent(time, priority, seq, lambda: None,
                            label=f"e{seq}")
    return (time, priority, seq, event)


class TestWheelPlacement:
    def test_levels_and_overflow(self):
        # tiny wheel: level horizons 2, 8, 32 time units
        wheel = HierarchicalTimerWheel(tick=0.5, slots=4, levels=3)
        wheel.insert(_entry(1.2, 1), now=0.0)    # level 0
        wheel.insert(_entry(5.0, 2), now=0.0)    # level 1
        wheel.insert(_entry(20.0, 3), now=0.0)   # level 2
        wheel.insert(_entry(500.0, 4), now=0.0)  # beyond: overflow
        stats = wheel.stats()
        assert stats["count"] == 4
        assert stats["buckets"] == [1, 1, 1]
        assert stats["overflow"] == 1
        assert wheel.next_bound <= 1.2

    def test_cascade_across_level_boundaries(self):
        """A far entry re-distributes down one level per cascade and
        is released exactly once, in time order."""
        wheel = HierarchicalTimerWheel(tick=0.5, slots=4, levels=3)
        times = [1.2, 5.0, 5.3, 20.0, 31.9]
        for seq, time in enumerate(times):
            wheel.insert(_entry(time, seq), now=0.0)
        queue: list[tuple] = []
        released: list[float] = []
        limit = 0.0
        while wheel.count or queue:
            limit += 0.5
            wheel.drain_due(limit, queue)
            queue.sort()
            while queue and queue[0][0] <= limit:
                released.append(queue.pop(0)[0])
        assert released == sorted(times)
        assert wheel.stats()["buckets"] == [0, 0, 0]

    def test_drain_preserves_tie_order(self):
        """Same-instant entries come out in (priority, seq) order no
        matter which bucket shape they were stored in."""
        wheel = HierarchicalTimerWheel(tick=0.5, slots=4, levels=3)
        wheel.insert(_entry(5.0, 7), now=0.0)
        wheel.insert(_entry(5.0, 3), now=0.0)
        wheel.insert(_entry(5.0, 5, priority=-1), now=0.0)
        queue: list[tuple] = []
        wheel.drain_due(5.0, queue)
        order = [(entry[1], entry[2]) for entry in sorted(queue)]
        assert order == [(-1, 5), (0, 3), (0, 7)]


class TestCancellation:
    def test_cancel_after_expiry_is_inert(self):
        """Cancelling an event that already fired must not corrupt the
        live-event accounting."""
        kernel = Kernel()
        fired = []
        event = kernel.after(2.0, lambda: fired.append(True),
                             label="once")
        kernel.run_until_quiescent()
        assert fired == [True]
        before = kernel.pending
        kernel.cancel(event)   # too late: already executed
        kernel.cancel(event)   # and idempotent
        assert kernel.pending == before == 0

    def test_cancelled_wheel_resident_never_dispatches(self):
        kernel = Kernel()
        fired = []
        event = kernel.after(50.0, lambda: fired.append(True),
                             label="far")
        assert kernel.pending == 1
        kernel.cancel(event)
        assert kernel.pending == 0
        kernel.run_until_quiescent()
        assert fired == []

    def test_timer_cancel_after_expiry(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.clock.now))
        timer.arm(3.0)
        kernel.run_until_quiescent()
        assert fired == [3.0]
        timer.cancel()  # after the fact: a no-op
        kernel.run_until_quiescent()
        assert fired == [3.0]


class TestRenewalRaces:
    def _table(self, fast: bool) -> tuple[Kernel, LeaseTable, list]:
        with kernel_fast_path(fast), lease_fast_path(fast):
            kernel = Kernel()
            table = LeaseTable(kernel.clock, ttl=10.0,
                               kernel_source=lambda: kernel)
        expired: list[tuple[str, str]] = []
        table.on_expire = lambda ws, dov: expired.append((ws, dov))
        return kernel, table, expired

    def test_renewal_racing_expiry_at_the_same_tick(self):
        """Both orderings of a renewal racing the expiry check at the
        very same instant are safe: a renewal sequenced *before* the
        check extends the lease; one sequenced *after* is a no-op —
        it never resurrects."""
        for fast in (True, False):
            # renewal first (scheduled before the grant's expiry event)
            kernel, table, expired = self._table(fast)
            kernel.at(10.0, lambda t=table: t.renew("ws-1", "dov-1"),
                      label="renewal")
            table.grant("ws-1", "dov-1")
            kernel.run_until(12.0)
            assert expired == [], f"fast={fast}"
            assert table.lease("ws-1", "dov-1") is not None
            kernel.run_until_quiescent()
            assert expired == [("ws-1", "dov-1")]

            # expiry check first, renewal second at the same instant
            kernel, table, expired = self._table(fast)
            outcome: list[bool] = []
            table.grant("ws-1", "dov-1")
            kernel.at(10.0,
                      lambda t=table:
                      outcome.append(t.renew("ws-1", "dov-1")),
                      label="renewal")
            kernel.run_until_quiescent()
            assert expired == [("ws-1", "dov-1")], f"fast={fast}"
            assert outcome == [False]  # lost the race: no resurrect
            assert table.lease("ws-1", "dov-1") is None

    def test_renewal_never_resurrects(self):
        for fast in (True, False):
            kernel, table, expired = self._table(fast)
            table.grant("ws-1", "dov-1")
            kernel.run_until_quiescent()
            assert expired == [("ws-1", "dov-1")]
            assert table.renew("ws-1", "dov-1") is False
            kernel.run_until_quiescent()
            assert table.lease("ws-1", "dov-1") is None

    def test_release_then_expiry_event_is_skipped(self):
        kernel, table, expired = self._table(True)
        table.grant("ws-1", "dov-1")
        kernel.at(4.0, lambda: table.release("ws-1", "dov-1"),
                  label="release")
        kernel.run_until_quiescent()
        assert expired == []
        assert table.stats()["expirations"] == 0


class TestInsertionOrder:
    def test_zero_delay_events_preserve_insertion_order(self):
        for fast in (True, False):
            with kernel_fast_path(fast):
                scheduler = EventScheduler(SimClock())
            seen: list[int] = []
            for index in range(8):
                scheduler.defer(0.0, lambda i=index: seen.append(i))
            scheduler.after(0.0, lambda: seen.append(100))
            scheduler.defer(0.0, lambda: seen.append(101))
            scheduler.run()
            assert seen == list(range(8)) + [100, 101], f"fast={fast}"

    def test_traces_identical_with_and_without_wheel(self):
        """The determinism contract at unit scale: a storm of mixed
        near/far/cancelled/re-entrant events traces byte-identically
        on the fast and the compat build."""
        def storm(fast: bool) -> tuple:
            with kernel_fast_path(fast):
                kernel = Kernel(SimClock())
            handles = []

            def work(index: int) -> None:
                if index % 3 == 0:
                    kernel.defer((index * 7) % 11 + 0.25,
                                 lambda: None, label=f"child-{index}")

            for index in range(200):
                delay = (index * 13) % 29 + index * 0.01
                if index % 4 == 0:
                    handles.append(kernel.after(
                        delay, lambda i=index: work(i),
                        label=f"evt-{index}"))
                else:
                    kernel.defer(delay, lambda i=index: work(i),
                                 label=f"evt-{index}")
            for handle in handles[::3]:
                kernel.cancel(handle)
            kernel.run()
            return kernel.trace_signature()

        assert storm(True) == storm(False)


class TestSlabRecycling:
    def test_deferred_events_are_recycled(self):
        scheduler = EventScheduler(SimClock())
        for _ in range(16):
            scheduler.defer(0.5, lambda: None)
        scheduler.run()
        slab = scheduler._slab
        assert len(slab) == 16
        recycled = slab[-1]
        scheduler.defer(0.5, lambda: None)
        assert slab[-1] is not recycled  # drawn back out of the slab
        scheduler.run()

    def test_pinned_events_are_never_recycled(self):
        scheduler = EventScheduler(SimClock())
        event = scheduler.after(0.5, lambda: None)
        scheduler.run()
        assert event not in scheduler._slab
        assert event.done


class TestRunUntilMaxEvents:
    def test_max_events_exit_does_not_jump_the_clock(self):
        """Satellite regression: run(until=..., max_events=...) used to
        advance the clock to *until* even when it stopped early with
        events still pending before the deadline."""
        kernel = Kernel()
        seen = []
        for time in (1.0, 2.0, 3.0):
            kernel.at(time, lambda t=time: seen.append(t))
        ran = kernel.run(until=10.0, max_events=2)
        assert ran == 2
        assert kernel.clock.now == 2.0  # NOT 10.0
        ran = kernel.run(until=10.0)
        assert ran == 1
        assert seen == [1.0, 2.0, 3.0]
        assert kernel.clock.now == 10.0  # drained: deadline honoured
