"""Unit tests for transactional RPC: at-most-once, failures."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.util.errors import RpcError


@pytest.fixture
def rig():
    network = Network()
    network.add_server()
    network.add_workstation("ws-1")
    rpc = TransactionalRpc(network)
    calls = []

    def add(a, b):
        calls.append((a, b))
        return a + b

    rpc.register("server", "add", add)
    return network, rpc, calls


class TestRpc:
    def test_basic_call(self, rig):
        __, rpc, calls = rig
        result = rpc.call("ws-1", "server", "add", 2, 3)
        assert result.value == 5
        assert not result.cached
        assert calls == [(2, 3)]

    def test_at_most_once_with_same_call_id(self, rig):
        __, rpc, calls = rig
        first = rpc.call("ws-1", "server", "add", 2, 3, call_id="c1")
        again = rpc.call("ws-1", "server", "add", 2, 3, call_id="c1")
        assert again.value == first.value
        assert again.cached
        assert len(calls) == 1  # handler executed only once

    def test_reply_cache_survives_callee_crash(self, rig):
        network, rpc, calls = rig
        rpc.call("ws-1", "server", "add", 1, 1, call_id="c2")
        network.crash_node("server")
        network.restart_node("server")
        retry = rpc.call("ws-1", "server", "add", 1, 1, call_id="c2")
        assert retry.cached
        assert len(calls) == 1

    def test_call_to_down_node_raises(self, rig):
        network, rpc, __ = rig
        network.crash_node("server")
        with pytest.raises(RpcError):
            rpc.call("ws-1", "server", "add", 1, 1)

    def test_unknown_endpoint(self, rig):
        __, rpc, __calls = rig
        with pytest.raises(RpcError):
            rpc.call("ws-1", "server", "nope")

    def test_handler_exception_propagates(self, rig):
        network, rpc, __ = rig

        def boom():
            raise ValueError("inner")

        rpc.register("server", "boom", boom)
        with pytest.raises(ValueError):
            rpc.call("ws-1", "server", "boom")

    def test_register_on_unknown_node(self, rig):
        __, rpc, __calls = rig
        with pytest.raises(Exception):
            rpc.register("ghost", "x", lambda: None)

    def test_counters(self, rig):
        __, rpc, __calls = rig
        rpc.call("ws-1", "server", "add", 1, 2, call_id="k")
        rpc.call("ws-1", "server", "add", 1, 2, call_id="k")
        assert rpc.calls_made == 1
        assert rpc.replies_cached == 1

    def test_latency_accumulates_two_hops(self, rig):
        network, rpc, __ = rig
        result = rpc.call("ws-1", "server", "add", 1, 2)
        assert result.latency == pytest.approx(2 * network.lan_latency)
