"""Integration tests for usage relationships: Require / Propagate /
invalidation / withdrawal (Sect.4.1, Sect.5.4)."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.dc.script import DopStep, Script, Sequence
from repro.util.errors import (
    CooperationError,
    RelationshipError,
    ScopeViolationError,
)
from repro.vlsi.tools import vlsi_dots

NOOP = Script(Sequence(DopStep("structure_synthesis")), "noop")


def module_data(width: float, height: float) -> dict:
    return {"cell": "m", "level": "module", "width": width,
            "height": height, "area": width * height}


@pytest.fixture
def rig():
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", NOOP, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b"]}})
    system.start(top.da_id)
    supplier = system.create_sub_da(top.da_id, dots["Module"],
                                    chip_spec(50, 50), "sue", NOOP,
                                    "ws-2")
    consumer = system.create_sub_da(top.da_id, dots["Module"],
                                    chip_spec(50, 50), "carl", NOOP,
                                    "ws-3")
    system.start(supplier.da_id)
    system.start(consumer.da_id)
    return system, top, supplier, consumer


class TestRequire:
    def test_require_establishes_relationship(self, rig):
        system, __, supplier, consumer = rig
        delivered = system.cm.require(consumer.da_id, supplier.da_id,
                                      {"width-limit"})
        assert delivered is None  # nothing propagated yet
        usage = system.cm.usage(consumer.da_id, supplier.da_id)
        assert usage.required_features == {"width-limit"}
        # the supporting DA got the require message
        messages = system.cm.pop_messages(supplier.da_id, "require")
        assert len(messages) == 1

    def test_require_unknown_features_rejected(self, rig):
        system, __, supplier, consumer = rig
        with pytest.raises(RelationshipError):
            system.cm.require(consumer.da_id, supplier.da_id,
                              {"no-such-feature"})

    def test_require_from_self_rejected(self, rig):
        system, __, supplier, __c = rig
        with pytest.raises(RelationshipError):
            system.cm.require(supplier.da_id, supplier.da_id,
                              {"width-limit"})

    def test_require_delivers_existing_propagation(self, rig):
        system, __, supplier, consumer = rig
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10, 10))
        system.cm.propagate(supplier.da_id, dov.dov_id)
        delivered = system.cm.require(consumer.da_id, supplier.da_id,
                                      {"width-limit"})
        assert delivered == dov.dov_id
        assert system.cm.in_scope(consumer.da_id, dov.dov_id)


class TestPropagate:
    def test_quality_gate(self, rig):
        system, __, supplier, consumer = rig
        system.cm.require(consumer.da_id, supplier.da_id,
                          {"width-limit", "height-limit"})
        too_big = system.repository.checkin(supplier.da_id, "Module",
                                            module_data(80, 80))
        receivers = system.cm.propagate(supplier.da_id, too_big.dov_id)
        assert receivers == []
        assert not system.cm.in_scope(consumer.da_id, too_big.dov_id)

        fitting = system.repository.checkin(supplier.da_id, "Module",
                                            module_data(40, 40))
        receivers = system.cm.propagate(supplier.da_id, fitting.dov_id)
        assert receivers == [consumer.da_id]
        assert system.cm.in_scope(consumer.da_id, fitting.dov_id)

    def test_propagate_auto_evaluates(self, rig):
        system, __, supplier, __c = rig
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10, 10))
        system.cm.propagate(supplier.da_id, dov.dov_id)
        assert dov.dov_id in supplier.quality

    def test_propagate_foreign_dov_rejected(self, rig):
        system, top, supplier, __ = rig
        with pytest.raises(ScopeViolationError):
            system.cm.propagate(supplier.da_id, top.vector.initial_dov)

    def test_no_exchange_without_usage_relationship(self, rig):
        """'DAs which are not connected by a usage relationship must
        not exchange data.'"""
        system, __, supplier, consumer = rig
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10, 10))
        receivers = system.cm.propagate(supplier.da_id, dov.dov_id)
        assert receivers == []
        assert not system.cm.in_scope(consumer.da_id, dov.dov_id)

    def test_consumer_can_checkout_delivered_dov(self, rig):
        system, __, supplier, consumer = rig
        system.cm.require(consumer.da_id, supplier.da_id, {"width-limit"})
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10, 10))
        system.cm.propagate(supplier.da_id, dov.dov_id)
        client_tm = system.runtime(consumer.da_id).client_tm
        dop = client_tm.begin_dop(consumer.da_id, "structure_synthesis")
        checked_out = client_tm.checkout(dop, dov.dov_id)
        assert checked_out.data["width"] == 10
        client_tm.abort_dop(dop, "test")


class TestWithdrawal:
    def _delivered(self, rig):
        system, __, supplier, consumer = rig
        system.cm.require(consumer.da_id, supplier.da_id, {"width-limit"})
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10, 10))
        system.cm.propagate(supplier.da_id, dov.dov_id)
        return system, supplier, consumer, dov

    def test_withdraw_revokes_scope(self, rig):
        system, supplier, consumer, dov = self._delivered(rig)
        system.cm.withdraw(supplier.da_id, dov.dov_id)
        assert not system.cm.in_scope(consumer.da_id, dov.dov_id)
        usage = system.cm.usage(consumer.da_id, supplier.da_id)
        assert usage.withdrawn == [dov.dov_id]
        messages = system.cm.pop_messages(consumer.da_id, "withdrawal")
        assert messages[0].payload["dov"] == dov.dov_id

    def test_withdraw_stops_affected_dm(self, rig):
        system, supplier, consumer, dov = self._delivered(rig)
        # the consumer used the DOV in a DOP -> DM log has a DOV_USED
        from repro.repository.wal import LogRecordKind
        dm = system.runtime(consumer.da_id).dm
        dm.log.append(LogRecordKind.DOV_USED, {"dov": dov.dov_id},
                      force=True)
        affected = system.cm.withdraw(supplier.da_id, dov.dov_id)
        assert affected == [consumer.da_id]
        assert dm.stopped

    def test_withdraw_unused_does_not_stop(self, rig):
        system, supplier, consumer, dov = self._delivered(rig)
        affected = system.cm.withdraw(supplier.da_id, dov.dov_id)
        assert affected == []
        assert not system.runtime(consumer.da_id).dm.stopped

    def test_spec_change_triggers_withdrawal(self, rig):
        """'If ... the specification of the DA is changed such that the
        features of a previously propagated DOV are not part of a new
        specification, the propagation has to be withdrawn.'"""
        system, supplier, consumer, dov = self._delivered(rig)
        top_id = supplier.parent
        # the new spec demands width <= 5; the delivered DOV (10) fails
        system.cm.modify_sub_da_specification(top_id, supplier.da_id,
                                              chip_spec(5, 5))
        assert not system.cm.in_scope(consumer.da_id, dov.dov_id)
        usage = system.cm.usage(consumer.da_id, supplier.da_id)
        assert usage.withdrawn == [dov.dov_id]


class TestInvalidation:
    def test_replacement_delivered(self, rig):
        system, __, supplier, consumer = rig
        system.cm.require(consumer.da_id, supplier.da_id, {"width-limit"})
        first = system.repository.checkin(supplier.da_id, "Module",
                                          module_data(10, 10))
        second = system.repository.checkin(supplier.da_id, "Module",
                                           module_data(20, 20),
                                           parents=(first.dov_id,))
        system.cm.propagate(supplier.da_id, first.dov_id)
        system.cm.evaluate(supplier.da_id, second.dov_id)
        result = system.cm.invalidate_propagation(supplier.da_id,
                                                  first.dov_id)
        assert result == {consumer.da_id: second.dov_id}
        assert not system.cm.in_scope(consumer.da_id, first.dov_id)
        assert system.cm.in_scope(consumer.da_id, second.dov_id)

    def test_no_replacement_becomes_withdrawal(self, rig):
        system, __, supplier, consumer = rig
        system.cm.require(consumer.da_id, supplier.da_id, {"width-limit"})
        only = system.repository.checkin(supplier.da_id, "Module",
                                         module_data(10, 10))
        system.cm.propagate(supplier.da_id, only.dov_id)
        result = system.cm.invalidate_propagation(supplier.da_id,
                                                  only.dov_id)
        assert result == {consumer.da_id: None}
        usage = system.cm.usage(consumer.da_id, supplier.da_id)
        assert usage.withdrawn == [only.dov_id]


class TestServerCrashRecovery:
    def test_cm_state_survives_server_crash(self, rig):
        system, top, supplier, consumer = rig
        system.cm.require(consumer.da_id, supplier.da_id, {"width-limit"})
        dov = system.repository.checkin(supplier.da_id, "Module",
                                        module_data(10, 10))
        system.cm.propagate(supplier.da_id, dov.dov_id)
        das_before = {d.da_id for d in system.cm.das()}
        scope_before = system.cm.scope_of(consumer.da_id)

        system.crash_server()
        system.restart_server()

        assert {d.da_id for d in system.cm.das()} == das_before
        assert system.cm.scope_of(consumer.da_id) == scope_before
        assert system.cm.usage(consumer.da_id,
                               supplier.da_id).delivered == [dov.dov_id]
        # the DA hierarchy is intact
        assert system.cm.da(supplier.da_id).parent == top.da_id
