"""Write-back object buffers: deferred checkins, group flush, recovery.

The PR-3 acceptance surface at the TE level: write-back checkins cost
zero network events until a flush ships them as ONE batched, sized
group checkin under a single 2PC; successive checkins of the same
lineage coalesce before shipping; the batch commits atomically (an
integrity failure or a server crash mid-batch leaves *nothing*
durable); a workstation crash drops dirty data (recovered from
repository state); and a server restart re-validates resident buffer
entries by repository stamp instead of cold-flushing them.
"""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.repository.storage import VersionStore
from repro.repository.versions import DesignObjectVersion
from repro.sim.clock import SimClock
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.recovery import RecoveryPointPolicy
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.util.errors import StorageError, TransactionError
from repro.util.ids import IdGenerator


def make_rig(write_back: bool = True, capacity: int | None = None,
             flush_interval: int | None = None):
    """Client/server TM pair with write-back workstations (no kernel:
    posted messages hand over synchronously)."""
    clock = SimClock()
    network = Network(clock, bandwidth=1000.0)
    server_node = network.add_server()
    network.add_workstation("ws-1")
    network.add_workstation("ws-2")
    rpc = TransactionalRpc(network)
    ids = IdGenerator()
    repo = DesignDataRepository(ids)
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)]))
    repo.create_graph("da-1")
    repo.create_graph("da-2")
    # repository recovery registers BEFORE the server-TM hooks so a
    # restart has fresh stamps by the time buffers re-validate
    server_node.on_crash.append(lambda: repo.crash())
    server_node.on_restart.append(lambda: repo.recover())
    locks = LockManager()
    server_tm = ServerTM(repo, locks, network, clock=clock)
    server_tm.scope_check = lambda da_id, dov_id: True
    register_server_endpoints(rpc, server_tm)
    buffers = {name: ObjectBuffer(name, capacity_bytes=capacity,
                                  policy="lru")
               for name in ("ws-1", "ws-2")}
    clients = {
        name: ClientTM(name, server_tm, rpc, clock, ids,
                       policy=RecoveryPointPolicy(interval=30.0),
                       buffer=buffers[name], write_back=write_back,
                       flush_interval=flush_interval)
        for name in ("ws-1", "ws-2")}
    dov0 = repo.checkin("da-1", "Cell", {"area": 100.0})
    return {
        "clock": clock, "network": network, "repo": repo,
        "server_tm": server_tm, "clients": clients,
        "buffers": buffers, "dov0": dov0,
    }


@pytest.fixture
def rig():
    return make_rig()


class TestDeferredCheckin:
    def test_checkin_is_local_and_provisional(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        sent = network.messages_sent
        bytes_before = network.bytes_shipped
        result = client.checkin(dop, "Cell", data={"area": 50.0},
                                parents=[rig["dov0"].dov_id])
        assert result.success and result.provisional
        # zero network events, zero bytes: the checkin stayed local
        assert network.messages_sent == sent
        assert network.bytes_shipped == bytes_before
        assert rig["buffers"]["ws-1"].entry(result.dov.dov_id).dirty
        assert result.dov.dov_id not in rig["repo"]

    def test_own_dirty_version_is_a_buffer_hit(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        result = client.checkin(dop, "Cell", data={"area": 50.0},
                                parents=[rig["dov0"].dov_id])
        dop2 = client.begin_dop("da-1", "tool")
        dov = client.checkout(dop2, result.dov.dov_id)
        assert dov.data["area"] == 50.0

    def test_coalescing_drops_superseded_intermediates(self, rig):
        client = rig["clients"]["ws-1"]
        buffer = rig["buffers"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        r1 = client.checkin(dop, "Cell", data={"area": 50.0},
                            parents=[rig["dov0"].dov_id])
        r2 = client.checkin(dop, "Cell", data={"area": 25.0},
                            parents=[r1.dov.dov_id])
        # the intermediate vanished before ever shipping
        assert len(buffer.dirty_entries()) == 1
        assert buffer.coalesced == 1
        assert r1.dov.dov_id not in buffer
        # the survivor inherits the durable lineage
        entry = buffer.entry(r2.dov.dov_id)
        assert entry.record["parents"] == [rig["dov0"].dov_id]


class TestGroupFlush:
    def test_end_of_dop_flushes_one_batch(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        repo = rig["repo"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        r1 = client.checkin(dop, "Cell", data={"area": 50.0},
                            parents=[rig["dov0"].dov_id])
        r2 = client.checkin(dop, "Cell", data={"area": 25.0},
                            parents=[r1.dov.dov_id])
        client.commit_dop(dop, r2)
        assert client.flushes == 1
        assert network.batches_sent == 1
        # coalescing: only ONE version became durable
        durable = client.resolve(r2.dov.dov_id)
        assert durable in repo
        assert repo.read(durable).data["area"] == 25.0
        assert client.resolve(r1.dov.dov_id) == durable
        assert dop.output_dov == durable
        # the flushed version stays resident, clean, under a lease
        buffer = rig["buffers"]["ws-1"]
        assert durable in buffer
        assert not buffer.entry(durable).dirty
        assert rig["server_tm"].lease_holders(durable) == {"ws-1"}
        # the derivation graph extended exactly once
        assert [d.dov_id for d in repo.graph("da-1").leaves()] \
            == [durable]

    def test_flush_invalidates_remote_superseded_copies(self, rig):
        reader = rig["clients"]["ws-2"]
        writer = rig["clients"]["ws-1"]
        dov0 = rig["dov0"]
        dop_r = reader.begin_dop("da-2", "tool")
        reader.checkout(dop_r, dov0.dov_id)
        assert dov0.dov_id in rig["buffers"]["ws-2"]
        dop_w = writer.begin_dop("da-1", "tool")
        writer.checkout(dop_w, dov0.dov_id)
        result = writer.checkin(dop_w, "Cell", data={"area": 1.0},
                                parents=[dov0.dov_id])
        # nothing shipped yet: the reader's copy is still leased
        assert dov0.dov_id in rig["buffers"]["ws-2"]
        writer.commit_dop(dop_w, result)
        # the flush committed the supersession: leases revoked
        assert dov0.dov_id not in rig["buffers"]["ws-2"]
        assert rig["server_tm"].lease_holders(dov0.dov_id) == set()

    def test_flush_interval_triggers_mid_dop(self):
        rig = make_rig(flush_interval=2)
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.checkin(dop, "Cell", data={"area": 9.0},
                       parents=[rig["dov0"].dov_id])
        assert client.flushes == 0
        client.checkin(dop, "Cell", data={"area": 8.0}, parents=[])
        # the second deferred checkin crossed the interval
        assert client.flushes == 1
        assert len(rig["buffers"]["ws-1"].dirty_entries()) == 0

    def test_capacity_pressure_triggers_flush(self):
        rig = make_rig(capacity=60)
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkin(dop, "Cell", data={"area": 1.0}, parents=[])
        # 20 modelled bytes per version; the third put exceeds the
        # 60-byte capacity while everything is pinned dirty
        client.checkin(dop, "Cell", data={"area": 2.0}, parents=[])
        client.checkin(dop, "Cell", data={"area": 3.0}, parents=[])
        dop2 = client.begin_dop("da-1", "tool")
        client.checkin(dop2, "Cell", data={"area": 4.0}, parents=[])
        assert client.flushes >= 1

    def test_lease_recall_triggers_flush(self, rig):
        writer_wt = rig["clients"]["ws-2"]
        writer_wt.write_back = False  # ws-2 ships eagerly
        deferred = rig["clients"]["ws-1"]
        dov0 = rig["dov0"]
        dop = deferred.begin_dop("da-1", "tool")
        deferred.checkout(dop, dov0.dov_id)
        deferred.checkin(dop, "Cell", data={"area": 50.0},
                         parents=[dov0.dov_id])
        assert deferred.flushes == 0
        # ws-2 supersedes dov0 eagerly -> invalidation recalls ws-1's
        # leased copy, whose dirty entry derives from it -> auto-flush
        dop_w = writer_wt.begin_dop("da-2", "tool")
        writer_wt.checkout(dop_w, dov0.dov_id)
        result = writer_wt.checkin(dop_w, "Cell", data={"area": 2.0},
                                   parents=[dov0.dov_id])
        assert result.success and not result.provisional
        assert deferred.flushes == 1
        assert len(rig["buffers"]["ws-1"].dirty_entries()) == 0

    def test_recall_reentrancy_sends_one_invalidation_per_holder(self,
                                                                 rig):
        """A recall-triggered flush re-enters the commit observer in
        synchronous rigs; leases are revoked before posting, so each
        holder still receives exactly ONE invalidation for dov0."""
        server_tm = rig["server_tm"]
        writer_wt = rig["clients"]["ws-2"]
        writer_wt.write_back = False
        deferred = rig["clients"]["ws-1"]
        dov0 = rig["dov0"]
        # both workstations lease dov0; ws-1 has dirty work derived
        # from it
        dop_r = writer_wt.begin_dop("da-2", "tool")
        writer_wt.checkout(dop_r, dov0.dov_id)
        dop = deferred.begin_dop("da-1", "tool")
        deferred.checkout(dop, dov0.dov_id)
        deferred.checkin(dop, "Cell", data={"area": 50.0},
                         parents=[dov0.dov_id])
        posted: list[tuple[str, str]] = []
        original = server_tm._post_invalidation

        def spying_post(workstation, dov_id, superseded_by):
            posted.append((workstation, dov_id))
            return original(workstation, dov_id,
                            superseded_by=superseded_by)

        server_tm._post_invalidation = spying_post
        dop_w = writer_wt.begin_dop("da-2", "tool")
        writer_wt.checkout(dop_w, dov0.dov_id)
        writer_wt.checkin(dop_w, "Cell", data={"area": 2.0},
                          parents=[dov0.dov_id])
        assert deferred.flushes == 1
        # dov0 had two holders -> exactly ONE invalidation each, even
        # though the nested flush re-entered the commit observer
        assert posted.count(("ws-1", dov0.dov_id)) == 1
        assert posted.count(("ws-2", dov0.dov_id)) == 1
        assert server_tm.lease_holders(dov0.dov_id) == set()


class TestGroupAtomicity:
    def test_integrity_failure_aborts_the_whole_batch(self, rig):
        client = rig["clients"]["ws-1"]
        repo = rig["repo"]
        dop = client.begin_dop("da-1", "tool")
        client.checkin(dop, "Cell", data={"area": 10.0}, parents=[])
        # schema violation: area must be a float
        client.checkin(dop, "Cell", data={"area": "broken"},
                       parents=[])
        durable_before = repo.stats()["durable_versions"]
        flushed = client.flush()
        assert not flushed.success
        assert "area" in flushed.reason
        # atomic: the valid record did not slip through either
        assert repo.stats()["durable_versions"] == durable_before
        assert repo.stats()["staged_versions"] == 0
        # the dirty set is intact for a later (corrected) retry
        assert len(rig["buffers"]["ws-1"].dirty_entries()) == 2

    def test_server_crash_mid_batch_leaves_nothing_durable(self, rig):
        """Crash between prepare (staged) and commit: the staged batch
        dies with the server's volatile state; after restart nothing
        is durable and the retried flush commits everything."""
        client = rig["clients"]["ws-1"]
        server_tm = rig["server_tm"]
        network = rig["network"]
        repo = rig["repo"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        r1 = client.checkin(dop, "Cell", data={"area": 50.0},
                            parents=[rig["dov0"].dov_id])
        r2 = client.checkin(dop, "Cell", data={"area": 25.0},
                            parents=[])
        records = [dict(e.record) for e
                   in rig["buffers"]["ws-1"].dirty_entries()]
        txn_id = "txn-crash-test"
        server_tm.request_group_checkin(txn_id, records,
                                        workstation="ws-1", lease=True)
        vote = server_tm.prepare(txn_id)
        assert vote.value == "yes"
        assert repo.stats()["staged_versions"] == 2
        network.crash_node("server")
        # volatile staging vanished with the server
        assert repo.stats()["staged_versions"] == 0
        network.restart_node("server")
        # nothing from the batch became durable: recovery sees only
        # the pre-batch frontier
        assert repo.stats()["durable_versions"] == 1
        assert all(r["provisional_id"] not in repo for r in records)
        # the workstation still holds its dirty set: retry succeeds
        server_tm._staged_groups.pop(txn_id, None)
        flushed = client.flush()
        assert flushed.success and flushed.count == 2
        assert client.resolve(r1.dov.dov_id) in repo
        assert client.resolve(r2.dov.dov_id) in repo

    def test_commit_batch_is_one_forced_wal_write(self):
        store = VersionStore()
        for index in range(3):
            store.stage(DesignObjectVersion(
                f"dov-{index}", "Cell", {"area": float(index)},
                "da-1", 0.0, ()))
        forced_before = store.wal.forced_writes
        store.commit_batch(["dov-0", "dov-1", "dov-2"])
        assert store.wal.forced_writes == forced_before + 1
        assert len(store) == 3

    def test_commit_batch_missing_member_commits_nothing(self):
        store = VersionStore()
        store.stage(DesignObjectVersion("dov-0", "Cell", {}, "da-1",
                                        0.0, ()))
        with pytest.raises(StorageError):
            store.commit_batch(["dov-0", "dov-ghost"])
        assert len(store) == 0
        assert store.staged_ids() == {"dov-0"}

    def test_commit_batch_crash_before_force_loses_whole_batch(self):
        """The batch's durability rides on ONE forced flush: a crash
        before it must lose every record of the batch together."""
        store = VersionStore()
        for index in range(2):
            store.stage(DesignObjectVersion(
                f"dov-{index}", "Cell", {}, "da-1", 0.0, ()))
        original_force = store.wal.force
        store.wal.force = lambda: (_ for _ in ()).throw(
            StorageError("power cut"))
        with pytest.raises(StorageError):
            store.commit_batch(["dov-0", "dov-1"])
        store.wal.force = original_force
        store.crash()
        recovered = store.recover()
        assert recovered == 0
        assert len(store) == 0


class TestCrashSemantics:
    def test_workstation_crash_drops_dirty_data(self, rig):
        """Determinism + recovery: unflushed checkins die with the
        volatile buffer; repository state is untouched and recovery
        starts from it, not from the buffer."""
        client = rig["clients"]["ws-1"]
        repo = rig["repo"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.checkin(dop, "Cell", data={"area": 50.0},
                       parents=[rig["dov0"].dov_id])
        durable_before = repo.stats()["durable_versions"]
        rig["network"].crash_node("ws-1")
        buffer = rig["buffers"]["ws-1"]
        assert len(buffer) == 0
        assert buffer.dirty_lost == 1
        assert repo.stats()["durable_versions"] == durable_before
        rig["network"].restart_node("ws-1")
        # recovery re-derives from the durable frontier
        dop2 = client.begin_dop("da-1", "tool")
        dov = client.checkout(dop2, rig["dov0"].dov_id)
        assert dov.data["area"] == 100.0

    def test_abort_dop_discards_its_dirty_entries(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.checkin(dop, "Cell", data={"area": 50.0},
                       parents=[rig["dov0"].dov_id])
        client.abort_dop(dop, "designer changed her mind")
        assert len(rig["buffers"]["ws-1"].dirty_entries()) == 0
        assert client.flushes == 0

    def test_failed_end_of_dop_flush_does_not_commit_the_dop(self, rig):
        """A deferred integrity violation surfaces at End-of-DOP: the
        flush aborts, commit_dop raises, and the DOP stays ACTIVE with
        its dirty entries so the designer can correct or abort."""
        client = rig["clients"]["ws-1"]
        repo = rig["repo"]
        dop = client.begin_dop("da-1", "tool")
        result = client.checkin(dop, "Cell", data={"area": "broken"},
                                parents=[])
        assert result.success and result.provisional  # deferred!
        with pytest.raises(TransactionError, match="area"):
            client.commit_dop(dop, result)
        assert dop.state.value == "active"
        assert repo.stats()["durable_versions"] == 1  # just dov0
        assert len(rig["buffers"]["ws-1"].dirty_entries()) == 1
        # the designer gives up: abort reclaims the dirty entry
        client.abort_dop(dop, "cannot fix")
        assert len(rig["buffers"]["ws-1"].dirty_entries()) == 0

    def test_abort_dop_resets_interval_and_forward_map(self):
        rig = make_rig(flush_interval=3)
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        r1 = client.checkin(dop, "Cell", data={"area": 1.0},
                            parents=[rig["dov0"].dov_id])
        r2 = client.checkin(dop, "Cell", data={"area": 2.0},
                            parents=[r1.dov.dov_id])  # coalesces r1
        client.abort_dop(dop, "abandoned")
        # the discarded lineage no longer forwards anywhere
        assert client.resolve(r1.dov.dov_id) == r1.dov.dov_id
        assert client.resolve(r2.dov.dov_id) == r2.dov.dov_id
        # and a fresh DOP's checkins start a fresh interval count:
        # two deferred checkins must NOT cross the 3-checkin interval
        dop2 = client.begin_dop("da-1", "tool")
        client.checkin(dop2, "Cell", data={"area": 3.0}, parents=[])
        client.checkin(dop2, "Cell", data={"area": 4.0}, parents=[])
        assert client.flushes == 0


class TestRestartRevalidation:
    def _warm(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        assert rig["dov0"].dov_id in rig["buffers"]["ws-1"]
        return client

    def test_flush_path_still_available(self, rig):
        self._warm(rig)
        rig["server_tm"].revalidate_on_restart = False
        rig["network"].crash_node("server")
        rig["network"].restart_node("server")
        assert len(rig["buffers"]["ws-1"]) == 0

    def test_revalidation_keeps_matching_stamps_and_releases(self, rig):
        client = self._warm(rig)
        network = rig["network"]
        rig["server_tm"].revalidate_on_restart = True
        network.crash_node("server")
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == set()
        network.restart_node("server")
        buffer = rig["buffers"]["ws-1"]
        # the entry survived and was re-leased, so the next read is
        # local — zero re-shipped bytes
        assert rig["dov0"].dov_id in buffer
        assert buffer.revalidated == 1
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == {"ws-1"}
        bytes_before = network.bytes_shipped
        dop = client.begin_dop("da-1", "tool")
        dov = client.checkout(dop, rig["dov0"].dov_id)
        assert dov.dov_id == rig["dov0"].dov_id
        assert network.bytes_shipped == bytes_before

    def test_revalidation_drops_stale_entries(self, rig):
        self._warm(rig)
        buffer = rig["buffers"]["ws-1"]
        # a resident copy of a version the repository no longer knows
        ghost = DesignObjectVersion("dov-ghost", "Cell", {"area": 1.0},
                                    "da-1", 0.0, ())
        buffer.put(ghost, "da-1")
        rig["server_tm"].revalidate_on_restart = True
        rig["network"].crash_node("server")
        rig["network"].restart_node("server")
        assert "dov-ghost" not in buffer
        assert rig["dov0"].dov_id in buffer
        assert buffer.revalidation_drops == 1


class TestSystemRestartPaths:
    """ConcordSystem.restart_server: warm default, cold opt-out."""

    def _system(self, **kwargs):
        from repro.bench.scenarios import make_vlsi_system

        return make_vlsi_system(("ws-1",), trace=False, **kwargs)

    def _warm_system(self):
        from repro.bench.scenarios import chip_spec, make_vlsi_system
        from repro.dc.script import DopStep, Script, Sequence
        from repro.vlsi.tools import vlsi_dots

        system = make_vlsi_system(("ws-1",), trace=False)
        script = Script(Sequence(DopStep("structure_synthesis")), "s")
        da = system.init_design(
            vlsi_dots()["Chip"], chip_spec(60.0, 60.0), "alice",
            script, "ws-1",
            initial_data={"cell": "c", "level": "chip",
                          "behavior": {"operations": ["a"]}})
        system.start(da.da_id)
        system.run(da.da_id)
        client = system.client_tm("ws-1")
        dov = system.repository.graph(da.da_id).leaves()[0]
        dop = client.begin_dop(da.da_id, "warmup")
        client.checkout(dop, dov.dov_id)
        return system, dov

    def test_restart_revalidates_by_default(self):
        system, dov = self._warm_system()
        buffer = system.object_buffer("ws-1")
        assert dov.dov_id in buffer
        system.crash_server()
        system.restart_server()
        # the durable version survived recovery; its warm copy too
        assert dov.dov_id in buffer
        assert buffer.revalidated >= 1

    def test_restart_with_revalidate_false_flushes(self):
        system, dov = self._warm_system()
        buffer = system.object_buffer("ws-1")
        system.crash_server()
        system.restart_server(revalidate=False)
        assert len(buffer) == 0


class TestSystemWriteBack:
    """ConcordSystem(write_back=True): the DM flow runs unchanged."""

    def test_full_chip_design_flushes_per_end_of_dop(self):
        from repro.bench.scenarios import (
            make_vlsi_system,
            run_full_chip_design,
        )
        from repro.core.system import ConcordSystem
        from repro.te.recovery import RecoveryPointPolicy
        from repro.vlsi.methodology import playout_constraints
        from repro.vlsi.tools import register_vlsi_tools, vlsi_dots

        system = ConcordSystem(
            trace=False,
            recovery_policy=RecoveryPointPolicy(interval=30.0),
            write_back=True)
        system.add_workstation("ws-1")
        register_vlsi_tools(system.tools)
        for dot in vlsi_dots().values():
            system.repository.register_dot(dot)
        system.constraints = playout_constraints()
        da = run_full_chip_design(system)
        client = system.client_tm("ws-1")
        # every DOP's checkin deferred, then flushed at End-of-DOP;
        # the derivation graph looks exactly like the write-through one
        assert client.flushes == 5
        assert client.flushed_checkins == 5
        graph = system.repository.graph(da.da_id)
        assert len(graph) == 6  # DOV0 + one version per tool step
        assert len(graph.leaves()) == 1

    def test_matches_write_through_derivation_graph(self):
        from repro.bench.scenarios import run_full_chip_design
        from repro.core.system import ConcordSystem
        from repro.te.recovery import RecoveryPointPolicy
        from repro.vlsi.methodology import playout_constraints
        from repro.vlsi.tools import register_vlsi_tools, vlsi_dots

        def build(write_back):
            system = ConcordSystem(
                trace=False,
                recovery_policy=RecoveryPointPolicy(interval=30.0),
                write_back=write_back)
            system.add_workstation("ws-1")
            register_vlsi_tools(system.tools)
            for dot in vlsi_dots().values():
                system.repository.register_dot(dot)
            system.constraints = playout_constraints()
            da = run_full_chip_design(system)
            return system.repository.graph(da.da_id)

        through, back = build(False), build(True)
        assert through.ids() == back.ids()
        assert [d.dov_id for d in through.leaves()] \
            == [d.dov_id for d in back.leaves()]


class TestWriteBackDeterminism:
    def test_identically_seeded_runs_are_trace_identical(self):
        from repro.bench.scenarios import write_back_scenario

        first = write_back_scenario(team=2, write_back=True, seed=13,
                                    restart=False)
        second = write_back_scenario(team=2, write_back=True, seed=13,
                                     restart=False)
        assert first.signature == second.signature
        assert first.bytes_shipped == second.bytes_shipped
        assert first.makespan == second.makespan
