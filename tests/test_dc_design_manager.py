"""Integration tests for the design manager (workflow, events, recovery)."""

from __future__ import annotations

import pytest

from repro.core.system import ConcordSystem
from repro.dc.design_manager import DesignerPolicy
from repro.dc.constraints import DomainConstraintSet, NotBefore
from repro.dc.script import (
    Alternative,
    DaOpStep,
    DopStep,
    Iteration,
    Open,
    Script,
    Sequence,
)
from repro.core.features import DesignSpecification, RangeFeature
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
    range_constraint,
)


def build_system(constraints=None):
    system = ConcordSystem()
    system.add_workstation("ws-1")
    if constraints is not None:
        system.constraints = constraints
    system.tools.register(
        "halve", lambda ctx, p: ctx.data.update(
            area=ctx.data.get("area", 200.0) * 0.5), duration=10.0)
    system.tools.register(
        "negate", lambda ctx, p: ctx.data.update(
            area=-abs(ctx.data.get("area", 1.0))), duration=5.0)
    system.tools.register("noop", lambda ctx, p: None, duration=1.0)
    return system


def make_dot():
    return DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)],
        constraints=[range_constraint("area", lo=0.0)])


def start_da(system, script, spec=None, initial_area=400.0):
    dot = make_dot()
    spec = spec or DesignSpecification(
        [RangeFeature("area-limit", "area", hi=100.0)])
    da = system.init_design(dot, spec, "alice", script, "ws-1",
                            initial_data={"area": initial_area})
    system.start(da.da_id)
    return da


class TestAutomaticExecution:
    def test_sequence_runs_to_completion(self):
        system = build_system()
        da = start_da(system, Script(Sequence(
            DopStep("halve"), DopStep("halve"), DaOpStep("Evaluate"))))
        status = system.run(da.da_id)
        assert status.done
        assert status.executed_dops == 2
        assert da.final_dovs  # 400 -> 200 -> 100 <= limit

    def test_derivation_chain_built(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"),
                                              DopStep("halve"))))
        system.run(da.da_id)
        graph = system.repository.graph(da.da_id)
        assert len(graph) == 3  # DOV0 + 2 derived
        leaf = graph.leaves()[0]
        assert len(graph.ancestors_of(leaf.dov_id)) == 2

    def test_executed_tools_recorded(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"),
                                              DopStep("noop"))))
        dm = system.runtime(da.da_id).dm
        system.run(da.da_id)
        assert dm.executed_tools == ["halve", "noop"]

    def test_clock_advances_by_tool_durations(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"),
                                              DopStep("halve"))))
        system.run(da.da_id)
        assert system.clock.now == pytest.approx(20.0)


class TestDesignerPolicy:
    def test_alternative_choice(self):
        system = build_system()

        class PickSecond(DesignerPolicy):
            def choose_alternative(self, action):
                return 1

        da = start_da(system, Script(Alternative(DopStep("halve"),
                                                 DopStep("noop"))))
        system.run(da.da_id, policy=PickSecond())
        dm = system.runtime(da.da_id).dm
        assert dm.executed_tools == ["noop"]

    def test_iteration_until_goal(self):
        system = build_system()

        class IterateUntilFinal(DesignerPolicy):
            def __init__(self, system, da_id):
                self.system = system
                self.da_id = da_id

            def loop_decision(self, action):
                da = self.system.cm.da(self.da_id)
                return "exit" if da.final_dovs else "again"

        da = start_da(system, Script(Iteration(
            Sequence(DopStep("halve"), DaOpStep("Evaluate")),
            max_rounds=10)))
        system.run(da.da_id, policy=IterateUntilFinal(system, da.da_id))
        dm = system.runtime(da.da_id).dm
        # 400 -> 200 -> 100: two rounds needed
        assert dm.executed_dops == 2
        assert da.final_dovs

    def test_open_insertion(self):
        system = build_system()

        class InsertOnce(DesignerPolicy):
            def __init__(self):
                self.inserted = False

            def open_decision(self, action):
                if not self.inserted:
                    self.inserted = True
                    return ("insert", "halve")
                return "close"

        da = start_da(system, Script(Sequence(DopStep("halve"), Open())))
        system.run(da.da_id, policy=InsertOnce())
        dm = system.runtime(da.da_id).dm
        assert dm.executed_tools == ["halve", "halve"]
        assert dm.cursor.is_done()

    def test_unknown_inserted_tool_rejected(self):
        system = build_system()

        class InsertBogus(DesignerPolicy):
            def open_decision(self, action):
                return ("insert", "no-such-tool")

        da = start_da(system, Script(Open()))
        from repro.util.errors import WorkflowError
        with pytest.raises(WorkflowError):
            system.run(da.da_id, policy=InsertBogus())


class TestCheckinFailureHandling:
    def test_stop_on_failure(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("negate"),
                                              DopStep("halve"))))
        status = system.run(da.da_id)
        assert status.stopped
        dm = system.runtime(da.da_id).dm
        assert "checkin failure" in dm.stop_reason
        assert dm.aborted_dops == 1
        assert dm.executed_dops == 0

    def test_skip_on_failure(self):
        system = build_system()

        class Skip(DesignerPolicy):
            def on_checkin_failure(self, step, reason):
                return "skip"

        da = start_da(system, Script(Sequence(DopStep("negate"),
                                              DopStep("halve"))))
        status = system.run(da.da_id, policy=Skip())
        assert status.done
        dm = system.runtime(da.da_id).dm
        assert dm.aborted_dops == 1
        assert dm.executed_tools == ["halve"]


class TestDomainConstraintEnforcement:
    def test_constraint_stops_execution(self):
        constraints = DomainConstraintSet([NotBefore("halve", "noop")])
        system = build_system(constraints)
        da = start_da(system, Script(Sequence(DopStep("noop"),
                                              DopStep("halve"))))
        status = system.run(da.da_id)
        assert status.stopped
        assert "must not run before" in \
               system.runtime(da.da_id).dm.stop_reason

    def test_constraint_allows_correct_order(self):
        constraints = DomainConstraintSet([NotBefore("halve", "noop")])
        system = build_system(constraints)
        da = start_da(system, Script(Sequence(DopStep("halve"),
                                              DopStep("noop"))))
        assert system.run(da.da_id).done


class TestExternalEvents:
    def test_spec_modification_restarts_script(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"),
                                              DopStep("halve"))))
        system.run(da.da_id)
        dm = system.runtime(da.da_id).dm
        assert dm.cursor.is_done()
        dm.on_specification_modified()
        assert not dm.cursor.is_done()
        assert dm.executed_tools == []
        status = system.run(da.da_id)
        assert status.done

    def test_restart_from_chosen_dov(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"))))
        system.run(da.da_id)
        graph = system.repository.graph(da.da_id)
        dov0 = graph.root_id
        dm = system.runtime(da.da_id).dm
        dm.on_specification_modified(restart_dov=dov0)
        system.run(da.da_id)
        # the restarted DOP derived from DOV0, not from the leaf
        leaves = graph.leaves()
        new_leaf = max(leaves, key=lambda d: d.created_at)
        assert dov0 in new_leaf.parents

    def test_withdrawal_of_used_dov_stops(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"))))
        system.run(da.da_id)
        dm = system.runtime(da.da_id).dm
        used = dm.log.stable_records()[0]
        input_dov = system.repository.graph(da.da_id).root_id
        assert dm.on_withdrawal(input_dov) is True
        assert dm.stopped
        dm.designer_continue()
        assert not dm.stopped

    def test_withdrawal_of_unused_dov_continues(self):
        system = build_system()
        da = start_da(system, Script(Sequence(DopStep("halve"))))
        system.run(da.da_id)
        dm = system.runtime(da.da_id).dm
        assert dm.on_withdrawal("dov-unrelated") is False
        assert not dm.stopped


class TestDmCrashRecovery:
    def test_forward_recovery_restores_position(self):
        system = build_system()
        da = start_da(system, Script(Sequence(
            DopStep("halve"), DopStep("halve"), DopStep("noop"))))
        runtime = system.runtime(da.da_id)
        runtime.dm.step()   # first DOP only
        executed_before = runtime.dm.executed_dops
        system.crash_workstation("ws-1")
        reports = system.restart_workstation("ws-1")
        report = reports[da.da_id]
        assert report["executed_dops"] == executed_before
        # and the work flow can continue to completion
        status = system.run(da.da_id)
        assert status.done
        assert runtime.dm.executed_dops == 3

    def test_recovery_replays_decisions(self):
        system = build_system()

        class PickSecond(DesignerPolicy):
            def choose_alternative(self, action):
                return 1

        da = start_da(system, Script(Sequence(
            Alternative(DopStep("halve"), DopStep("noop")),
            DopStep("halve"))))
        runtime = system.runtime(da.da_id)
        runtime.dm.step(PickSecond())   # decide the alternative
        runtime.dm.step(PickSecond())   # run 'noop'
        system.crash_workstation("ws-1")
        system.restart_workstation("ws-1")
        status = system.run(da.da_id)
        assert status.done
        assert runtime.dm.executed_tools == ["noop", "halve"]
