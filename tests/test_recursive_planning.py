"""Tests for the recursive top-down planning scenario (Sect.3)."""

from __future__ import annotations

from repro.bench.scenarios import recursive_planning_scenario
from repro.core.states import DaState
from repro.vlsi.cells import sample_hierarchy


class TestRecursivePlanning:
    def test_one_da_per_inner_cell(self):
        hierarchy = sample_hierarchy()
        system, report = recursive_planning_scenario(
            hierarchy=hierarchy)
        inner = {c.name for c in hierarchy.cells() if c.children}
        assert set(report.das) == inner

    def test_da_depth_matches_cell_level(self):
        hierarchy = sample_hierarchy()
        __, report = recursive_planning_scenario(hierarchy=hierarchy)
        for cell in hierarchy.cells():
            if cell.children:
                assert report.depths[cell.name] == cell.level.value

    def test_every_inner_cell_got_a_floorplan(self):
        hierarchy = sample_hierarchy()
        __, report = recursive_planning_scenario(hierarchy=hierarchy)
        inner = {c.name for c in hierarchy.cells() if c.children}
        assert set(report.floorplans) == inner
        for width, height in report.floorplans.values():
            assert width > 0 and height > 0

    def test_devolution_climbs_to_the_root(self):
        system, report = recursive_planning_scenario()
        # every sub-DA terminated and devolved at least one final DOV
        sub_das = [da for da in system.cm.das() if da.parent is not None]
        assert sub_das
        assert all(da.state is DaState.TERMINATED for da in sub_das)
        assert all(report.devolved[da.da_id] for da in sub_das)
        # the root DA's scope accumulated its direct children's finals
        root_id = report.das["chip-0"]
        root_scope = system.cm.scope_of(root_id)
        for da in sub_das:
            if da.parent == root_id:
                for dov in report.devolved[da.da_id]:
                    assert dov in root_scope
