"""Workstation object buffers: cached checkout, leases, invalidation.

The data-shipping refactor's acceptance surface at the TE level:
buffer hits cost zero network events, misses ship the payload
size-aware under a read lease, committed checkins revoke the leases on
the versions they supersede, and crashes drop buffer + leases so
recovery re-fetches through the normal chain.
"""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.te.object_buffer import (
    FifoEviction,
    LruEviction,
    SizeAwareEviction,
    make_eviction_policy,
)
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.repository.versions import DesignObjectVersion, payload_sizeof
from repro.sim.clock import SimClock
from repro.te.object_buffer import ObjectBuffer
from repro.te.recovery import RecoveryPointPolicy
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.te.locks import LockManager
from repro.util.ids import IdGenerator


def make_dov(dov_id="dov-1", data=None, parents=()):
    return DesignObjectVersion(
        dov_id=dov_id, dot_name="Cell",
        data=data if data is not None else {"area": 10.0},
        created_by="da-1", created_at=0.0, parents=tuple(parents))


class TestObjectBufferUnit:
    def test_miss_then_hit(self):
        buffer = ObjectBuffer("ws-1")
        assert buffer.get("dov-1", "da-1") is None
        buffer.put(make_dov(), "da-1")
        assert buffer.get("dov-1", "da-1").dov_id == "dov-1"
        assert (buffer.hits, buffer.misses) == (1, 1)
        assert buffer.hit_rate == pytest.approx(0.5)

    def test_hits_are_scoped_per_da(self):
        buffer = ObjectBuffer("ws-1")
        buffer.put(make_dov(), "da-1")
        # another DA misses until its own (server-validated) fetch
        assert buffer.get("dov-1", "da-2") is None
        buffer.put(make_dov(), "da-2")
        assert buffer.get("dov-1", "da-2") is not None

    def test_invalidate_and_clear(self):
        buffer = ObjectBuffer("ws-1")
        buffer.put(make_dov(), "da-1")
        assert buffer.invalidate("dov-1") is True
        assert buffer.invalidate("dov-1") is False
        assert buffer.get("dov-1", "da-1") is None
        buffer.put(make_dov(), "da-1")
        assert buffer.clear() == 1
        assert len(buffer) == 0

    def test_capacity_evicts_oldest(self):
        blob = {"blob": "x" * 100}
        buffer = ObjectBuffer("ws-1", capacity_bytes=250)
        buffer.put(make_dov("dov-1", blob), "da-1")
        buffer.put(make_dov("dov-2", blob), "da-1")
        buffer.put(make_dov("dov-3", blob), "da-1")
        assert "dov-1" not in buffer
        assert "dov-3" in buffer
        assert buffer.evictions >= 1

    def test_stats_snapshot(self):
        buffer = ObjectBuffer("ws-1")
        buffer.put(make_dov(), "da-1")
        buffer.get("dov-1", "da-1")
        stats = buffer.stats()
        assert stats["resident"] == 1
        assert stats["hits"] == 1
        assert stats["resident_bytes"] == make_dov().payload_size
        assert stats["policy"] == "fifo"


class TestEvictionPolicies:
    """LRU and size-aware replacement vs the FIFO baseline."""

    BLOB = {"blob": "x" * 100}  # ~112 modelled bytes per entry

    def _filled(self, policy):
        """Three resident entries, dov-1 touched most recently."""
        buffer = ObjectBuffer("ws-1", capacity_bytes=350, policy=policy)
        for dov_id in ("dov-1", "dov-2", "dov-3"):
            buffer.put(make_dov(dov_id, self.BLOB), "da-1")
        buffer.get("dov-1", "da-1")  # recency: 1 > 3 > 2
        buffer.get("dov-3", "da-1")
        buffer.get("dov-1", "da-1")
        return buffer

    def test_policy_registry(self):
        assert isinstance(make_eviction_policy(None), FifoEviction)
        assert isinstance(make_eviction_policy("lru"), LruEviction)
        assert isinstance(make_eviction_policy("size-aware"),
                          SizeAwareEviction)
        with pytest.raises(ValueError):
            make_eviction_policy("clairvoyant")

    def test_fifo_evicts_oldest_resident_despite_recency(self):
        buffer = self._filled("fifo")
        buffer.put(make_dov("dov-4", self.BLOB), "da-1")
        # FIFO ignores the re-reads: dov-1 entered first, dov-1 goes
        assert "dov-1" not in buffer
        assert "dov-2" in buffer

    def test_lru_reauthorizing_put_counts_as_a_touch(self):
        buffer = self._filled("lru")
        # another DA's server-validated re-ship of dov-2 (the LRU
        # victim-to-be) must refresh its recency — the freshly paid
        # re-ship is not thrown away by the next eviction
        buffer.put(make_dov("dov-2", self.BLOB), "da-2")
        buffer.put(make_dov("dov-4", self.BLOB), "da-1")
        assert "dov-2" in buffer
        assert "dov-3" not in buffer  # now the least recently used

    def test_lru_keeps_the_hot_entry(self):
        buffer = self._filled("lru")
        buffer.put(make_dov("dov-4", self.BLOB), "da-1")
        # dov-2 is the least recently used; the re-read dov-1 survives
        assert "dov-2" not in buffer
        assert "dov-1" in buffer
        assert "dov-3" in buffer

    def test_size_aware_prefers_evicting_the_large_cold_entry(self):
        buffer = ObjectBuffer("ws-1", capacity_bytes=1300,
                              policy="size-aware")
        buffer.put(make_dov("dov-big", {"blob": "x" * 900}), "da-1")
        buffer.put(make_dov("dov-small", {"blob": "y" * 100}), "da-1")
        buffer.put(make_dov("dov-mid", {"blob": "z" * 400}), "da-1")
        # over capacity: GreedyDual-Size drops the big entry first
        # (smallest priority = inflation + 1/size), not the oldest
        assert "dov-big" not in buffer
        assert "dov-small" in buffer
        assert "dov-mid" in buffer

    def test_size_aware_hit_refreshes_priority(self):
        buffer = ObjectBuffer("ws-1", capacity_bytes=250,
                              policy="size-aware")
        buffer.put(make_dov("dov-a", self.BLOB), "da-1")
        buffer.put(make_dov("dov-b", self.BLOB), "da-1")
        # equal sizes degenerate to FIFO until an eviction inflates L
        buffer.put(make_dov("dov-c", self.BLOB), "da-1")
        assert "dov-a" not in buffer
        # a post-inflation hit re-credits dov-b above the cold dov-c
        buffer.get("dov-b", "da-1")
        buffer.put(make_dov("dov-d", self.BLOB), "da-1")
        assert "dov-c" not in buffer
        assert "dov-b" in buffer

    def test_dirty_entries_are_pinned_against_eviction(self):
        buffer = ObjectBuffer("ws-1", capacity_bytes=150, policy="lru")
        record = {"provisional_id": "wb-1", "da_id": "da-1",
                  "dot_name": "Cell", "data": dict(self.BLOB),
                  "parents": [], "dop_id": "dop-1"}
        buffer.put_dirty(make_dov("wb-1", self.BLOB), "da-1", record)
        buffer.put(make_dov("dov-2", self.BLOB), "da-1")
        # over capacity, but the dirty entry must never be the victim
        assert "wb-1" in buffer
        assert buffer.entry("wb-1").dirty

    def test_capacity_pressure_fires_the_flush_hook(self):
        buffer = ObjectBuffer("ws-1", capacity_bytes=150, policy="lru")
        flushed = []

        def fake_flush():
            flushed.append(True)
            for entry in buffer.dirty_entries():
                entry.dirty = False
                entry.record = None

        buffer.on_pressure = fake_flush
        record = {"provisional_id": "wb-1", "da_id": "da-1",
                  "dot_name": "Cell", "data": dict(self.BLOB),
                  "parents": [], "dop_id": "dop-1"}
        buffer.put_dirty(make_dov("wb-1", self.BLOB), "da-1", record)
        buffer.put(make_dov("dov-2", self.BLOB), "da-1")
        # pressure flushed the dirty set, then eviction could proceed
        assert flushed
        assert buffer.resident_bytes <= 150 or len(buffer) == 1


@pytest.fixture
def rig():
    """Client/server TM pair with a buffering workstation (no kernel:
    posted messages hand over synchronously)."""
    clock = SimClock()
    network = Network(clock, bandwidth=1000.0)
    network.add_server()
    network.add_workstation("ws-1")
    network.add_workstation("ws-2")
    rpc = TransactionalRpc(network)
    ids = IdGenerator()
    repo = DesignDataRepository(ids)
    repo.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("area", AttributeKind.FLOAT, required=False)]))
    repo.create_graph("da-1")
    repo.create_graph("da-2")
    locks = LockManager()
    server_tm = ServerTM(repo, locks, network, clock=clock)
    server_tm.scope_check = lambda da_id, dov_id: True
    register_server_endpoints(rpc, server_tm)
    buffers = {name: ObjectBuffer(name) for name in ("ws-1", "ws-2")}
    clients = {
        name: ClientTM(name, server_tm, rpc, clock, ids,
                       policy=RecoveryPointPolicy(interval=30.0),
                       buffer=buffers[name])
        for name in ("ws-1", "ws-2")}
    dov0 = repo.checkin("da-1", "Cell", {"area": 100.0})
    return {
        "clock": clock, "network": network, "repo": repo,
        "server_tm": server_tm, "clients": clients,
        "buffers": buffers, "dov0": dov0,
    }


class TestCachedCheckout:
    def test_second_checkout_is_a_local_hit(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        sent_after_miss = network.messages_sent
        bytes_after_miss = network.bytes_shipped
        dop2 = client.begin_dop("da-1", "tool")
        client.checkout(dop2, rig["dov0"].dov_id)
        # hit: zero network events, zero additional bytes
        assert network.messages_sent == sent_after_miss
        assert network.bytes_shipped == bytes_after_miss
        assert rig["buffers"]["ws-1"].hits == 1

    def test_miss_ships_payload_size(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        assert network.bytes_shipped == rig["dov0"].payload_size
        assert client.bytes_fetched == rig["dov0"].payload_size
        assert client.fetch_time > 0.0
        assert network.bytes_received_by["ws-1"] \
            == rig["dov0"].payload_size

    def test_miss_grants_a_lease(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == {"ws-1"}

    def test_derivation_lock_bypasses_the_buffer(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        sent = network.messages_sent
        dop2 = client.begin_dop("da-1", "tool")
        client.checkout(dop2, rig["dov0"].dov_id, derivation_lock=True)
        # the lock request must reach the server even though the
        # version is resident
        assert network.messages_sent > sent

    def test_hits_serve_while_server_is_down(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        rig["network"].crash_node("server")
        dop2 = client.begin_dop("da-1", "tool")
        dov = client.checkout(dop2, rig["dov0"].dov_id)
        assert dov.dov_id == rig["dov0"].dov_id


class TestLeaseInvalidation:
    def test_superseding_checkin_invalidates_remote_buffers(self, rig):
        reader = rig["clients"]["ws-2"]
        writer = rig["clients"]["ws-1"]
        dov0 = rig["dov0"]
        dop_r = reader.begin_dop("da-2", "tool")
        reader.checkout(dop_r, dov0.dov_id)
        assert dov0.dov_id in rig["buffers"]["ws-2"]
        dop_w = writer.begin_dop("da-1", "tool")
        writer.checkout(dop_w, dov0.dov_id)
        writer.work(dop_w, 5.0,
                    mutate=lambda c: c.data.update(area=50.0))
        result = writer.checkin(dop_w, "Cell")
        assert result.success
        # the superseded version was revoked everywhere it was leased
        assert dov0.dov_id not in rig["buffers"]["ws-2"]
        assert dov0.dov_id not in rig["buffers"]["ws-1"]
        assert rig["server_tm"].lease_holders(dov0.dov_id) == set()
        assert rig["server_tm"].invalidations_sent == 2
        # the committer keeps its new version resident under a lease
        assert result.dov.dov_id in rig["buffers"]["ws-1"]
        assert rig["server_tm"].lease_holders(result.dov.dov_id) \
            == {"ws-1"}

    def test_checkin_result_is_a_local_hit_next_checkout(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        client.work(dop, 5.0,
                    mutate=lambda c: c.data.update(area=50.0))
        result = client.checkin(dop, "Cell")
        sent = network.messages_sent
        dop2 = client.begin_dop("da-1", "tool")
        client.checkout(dop2, result.dov.dov_id)
        assert network.messages_sent == sent

    def test_upload_bytes_are_accounted_on_checkin(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        before = network.bytes_sent_by.get("ws-1", 0)
        client.checkin(dop, "Cell")
        payload = {"area": 100.0}
        assert network.bytes_sent_by["ws-1"] - before \
            == payload_sizeof(payload)


class TestCrashSemantics:
    def test_workstation_crash_drops_buffer_and_leases(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        rig["network"].crash_node("ws-1")
        assert len(rig["buffers"]["ws-1"]) == 0
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == set()

    def test_recovery_refetches_through_the_normal_chain(self, rig):
        client = rig["clients"]["ws-1"]
        network = rig["network"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        network.crash_node("ws-1")
        network.restart_node("ws-1")
        sent = network.messages_sent
        dop2 = client.begin_dop("da-1", "tool")
        client.checkout(dop2, rig["dov0"].dov_id)
        # cold buffer: the read went back to the server and re-leased
        assert network.messages_sent > sent
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == {"ws-1"}

    def test_server_crash_clears_the_lease_table(self, rig):
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        rig["network"].crash_node("server")
        assert rig["server_tm"].lease_holders(rig["dov0"].dov_id) \
            == set()

    def test_server_restart_flushes_unleased_buffers(self, rig):
        """The lease table died with the server; surviving buffered
        copies could never be revoked, so the restart flushes them —
        at the TE layer, no system facade required."""
        client = rig["clients"]["ws-1"]
        dop = client.begin_dop("da-1", "tool")
        client.checkout(dop, rig["dov0"].dov_id)
        assert rig["dov0"].dov_id in rig["buffers"]["ws-1"]
        rig["network"].crash_node("server")
        rig["network"].restart_node("server")
        assert len(rig["buffers"]["ws-1"]) == 0

    def test_capacity_eviction_releases_the_lease(self, rig):
        """An evicted copy must stop drawing invalidation traffic."""
        server_tm = rig["server_tm"]
        buffer = ObjectBuffer("ws-9")
        server_tm.register_buffer("ws-9", buffer)
        buffer.capacity_bytes = 1
        server_tm._leases["dov-a"] = {"ws-9"}
        server_tm._leases["dov-b"] = {"ws-9"}
        buffer.put(make_dov("dov-a"), "da-1")
        buffer.put(make_dov("dov-b"), "da-1")  # evicts dov-a
        assert "dov-a" not in buffer
        assert server_tm.lease_holders("dov-a") == set()
        assert server_tm.lease_holders("dov-b") == {"ws-9"}


class TestSystemWiring:
    """ConcordSystem wires one buffer per workstation into the TMs."""

    def _system(self, **kwargs):
        from repro.bench.scenarios import make_vlsi_system

        return make_vlsi_system(("ws-1", "ws-2"), trace=False, **kwargs)

    def test_buffers_on_by_default(self):
        system = self._system()
        buffer = system.object_buffer("ws-1")
        assert buffer is not None
        assert system.client_tm("ws-1").buffer is buffer
        assert system.object_buffer("ws-2") is not buffer

    def test_buffers_can_be_disabled(self):
        from repro.core.system import ConcordSystem

        system = ConcordSystem(trace=False, object_buffers=False)
        system.add_workstation("ws-1")
        assert system.object_buffer("ws-1") is None
        assert system.client_tm("ws-1").buffer is None

    def test_server_restart_flushes_buffers(self):
        system = self._system()
        buffer = system.object_buffer("ws-1")
        # seed an entry directly: flushing is what's under test
        buffer.put(make_dov("dov-x"), "da-1")
        system.crash_server()
        system.restart_server()
        assert len(buffer) == 0
