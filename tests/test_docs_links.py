"""The docs tree exists and its relative cross-links resolve.

Tier-1 mirror of the CI docs job: ``tools/check_links.py`` must pass
from a clean checkout, and the documents the README promises must
actually exist.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", ROOT / "tools" / "check_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    assert (ROOT / "docs" / "coherence.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "examples" / "README.md").is_file()


def test_readme_links_into_docs():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/coherence.md" in readme
    assert "docs/architecture.md" in readme
    assert "examples/README.md" in readme


def test_examples_catalog_covers_every_example():
    catalog = (ROOT / "examples" / "README.md").read_text(
        encoding="utf-8")
    for script in sorted((ROOT / "examples").glob("*.py")):
        assert script.name in catalog, \
            f"examples/README.md does not list {script.name}"


def test_all_relative_links_resolve(capsys):
    checker = _load_checker()
    assert checker.main([str(ROOT)]) == 0, capsys.readouterr().out


def test_checker_flags_broken_links(tmp_path):
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/missing.md) and [ok](docs/ok.md)\n",
        encoding="utf-8")
    (tmp_path / "docs" / "ok.md").write_text("fine\n", encoding="utf-8")
    assert checker.main([str(tmp_path)]) == 1
