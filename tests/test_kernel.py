"""Unit tests for the unified discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.sim.kernel import Kernel, Timer
from repro.util.errors import KernelError


class TestQuiescence:
    def test_runs_to_quiescence(self):
        kernel = Kernel()
        seen = []

        def chain():
            seen.append(kernel.clock.now)
            if len(seen) < 4:
                kernel.after(2.0, chain, label="chain")

        kernel.at(1.0, chain, label="chain")
        ran = kernel.run_until_quiescent()
        assert ran == 4
        assert kernel.quiescent
        assert seen == [1.0, 3.0, 5.0, 7.0]

    def test_event_budget_guard(self):
        kernel = Kernel()

        def forever():
            kernel.after(1.0, forever)

        kernel.at(0.0, forever)
        with pytest.raises(KernelError):
            kernel.run_until_quiescent(max_events=50)

    def test_deadline_leaves_later_events_pending(self):
        kernel = Kernel()
        seen = []
        for t in (1.0, 2.0, 3.0):
            kernel.at(t, lambda t=t: seen.append(t))
        kernel.run_until_quiescent(deadline=2.0)
        assert seen == [1.0, 2.0]
        assert not kernel.quiescent
        assert kernel.clock.now == 2.0

    def test_run_until(self):
        kernel = Kernel()
        kernel.at(5.0, lambda: None)
        kernel.run_until(3.0)
        assert kernel.clock.now == 3.0
        assert kernel.pending == 1


class TestRunningFlag:
    def test_running_only_inside_events(self):
        kernel = Kernel()
        observed = []
        kernel.at(1.0, lambda: observed.append(kernel.running))
        assert kernel.running is False
        kernel.run_until_quiescent()
        assert observed == [True]
        assert kernel.running is False


class TestEventLog:
    def test_log_records_time_seq_label(self):
        kernel = Kernel()
        kernel.at(2.0, lambda: None, label="b")
        kernel.at(1.0, lambda: None, label="a")
        kernel.run_until_quiescent()
        assert [(t, label) for t, *_, label in kernel.event_log] \
            == [(1.0, "a"), (2.0, "b")]

    def test_trace_signature_is_deterministic(self):
        def run_once() -> tuple:
            kernel = Kernel()
            for t in (3.0, 1.0, 2.0):
                kernel.at(t, lambda: None, label=f"e{t}")
            kernel.run_until_quiescent()
            return kernel.trace_signature()

        assert run_once() == run_once()

    def test_tracing_can_be_disabled(self):
        kernel = Kernel(trace_events=False)
        kernel.at(1.0, lambda: None)
        kernel.run_until_quiescent()
        assert kernel.event_log == []


class TestCrashAt:
    def test_crash_and_restart_enacted(self):
        kernel = Kernel()
        network = Network(kernel.clock)
        network.add_workstation("ws-1")
        ups = []
        kernel.crash_at(network, "ws-1", at=5.0, restart_after=2.0)
        kernel.at(6.0, lambda: ups.append(network.node("ws-1").up))
        kernel.at(8.0, lambda: ups.append(network.node("ws-1").up))
        kernel.run_until_quiescent()
        assert ups == [False, True]
        assert [(e.at, e.action) for e in kernel.injections] \
            == [(5.0, "crash"), (7.0, "restart")]

    def test_crash_without_restart(self):
        kernel = Kernel()
        network = Network(kernel.clock)
        network.add_workstation("ws-1")
        kernel.crash_at(network, "ws-1", at=1.0, restart_after=None)
        kernel.run_until_quiescent()
        assert network.node("ws-1").up is False

    def test_on_restart_callback(self):
        kernel = Kernel()
        network = Network(kernel.clock)
        network.add_workstation("ws-1")
        recovered = []
        kernel.crash_at(network, "ws-1", at=1.0, restart_after=1.0,
                        on_restart=recovered.append)
        kernel.run_until_quiescent()
        assert recovered == ["ws-1"]

    def test_crash_beats_same_instant_work(self):
        kernel = Kernel()
        network = Network(kernel.clock)
        network.add_workstation("ws-1")
        order = []
        kernel.at(5.0, lambda: order.append(
            ("work", network.node("ws-1").up)))
        kernel.crash_at(network, "ws-1", at=5.0, restart_after=None)
        kernel.run_until_quiescent()
        # priority -1: the crash interrupts the same-instant step
        assert order == [("work", False)]


class TestTimer:
    """The re-armable deadline primitive of the TTL leases."""

    def test_fires_at_the_deadline(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.clock.now))
        timer.arm(5.0)
        kernel.run_until_quiescent()
        assert fired == [5.0]
        assert timer.deadline is None

    def test_arm_extends_without_a_second_event(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.clock.now))
        timer.arm(5.0)
        kernel.at(4.0, lambda: timer.arm(9.0), label="extend")
        kernel.run_until_quiescent()
        assert fired == [9.0]
        # one extension = one re-check event, not a second live timer
        labels = [l for *_, l in kernel.event_log if l == "timer"]
        assert len(labels) == 2

    def test_cancel_makes_the_pending_event_inert(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.clock.now))
        timer.arm(5.0)
        kernel.at(2.0, timer.cancel, label="cancel")
        kernel.run_until_quiescent()
        assert fired == []

    def test_rearm_earlier_after_cancel_fires_on_time(self):
        """Cancel leaves a stale pending event; a fresh arm with an
        EARLIER deadline must not wait for it."""
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.clock.now))
        timer.arm(10.0)
        kernel.at(1.0, timer.cancel, label="cancel")
        kernel.at(2.0, lambda: timer.arm(5.0), label="rearm")
        kernel.run_until_quiescent()
        assert fired == [5.0]


class TestRunBoundariesUntraced:
    """``run(until=..., max_events=...)`` boundary semantics with
    tracing off — the bounds are enforced inside the scheduler's batch
    fast path, so they must hold exactly when ``_execute`` is shadowed
    by the direct dispatch."""

    def _kernel(self):
        kernel = Kernel(trace_events=False)
        fired: list[float] = []
        for t in (1.0, 2.0, 2.0, 3.0):
            kernel.at(t, lambda t=t: fired.append(t), label=f"e{t}")
        return kernel, fired

    def test_until_is_inclusive_and_advances_the_clock(self):
        kernel, fired = self._kernel()
        ran = kernel.run(until=2.0)
        assert ran == 3
        assert fired == [1.0, 2.0, 2.0]  # both t=2.0 events dispatch
        assert kernel.clock.now == 2.0
        assert kernel.pending == 1
        assert kernel.event_log == []  # untraced

    def test_until_between_events_still_advances_the_clock(self):
        kernel, fired = self._kernel()
        kernel.run(until=2.5)
        assert fired == [1.0, 2.0, 2.0]
        assert kernel.clock.now == 2.5  # deadline, not last event

    def test_max_events_stops_before_the_next_event(self):
        kernel, fired = self._kernel()
        ran = kernel.run(max_events=2)
        assert ran == 2
        assert fired == [1.0, 2.0]
        # the clock sits at the last *executed* event, never past
        # undispatched ones
        assert kernel.clock.now == 2.0
        assert kernel.pending == 2

    def test_max_events_zero_executes_nothing(self):
        kernel, fired = self._kernel()
        assert kernel.run(max_events=0) == 0
        assert fired == []
        assert kernel.pending == 4
        assert kernel.clock.now == 0.0

    def test_bounds_compose_and_runs_resume(self):
        kernel, fired = self._kernel()
        assert kernel.run(until=3.0, max_events=1) == 1
        assert fired == [1.0]
        assert kernel.run(until=3.0) == 3
        assert fired == [1.0, 2.0, 2.0, 3.0]
        assert kernel.quiescent

    def test_untraced_order_matches_traced_order(self):
        def drive(trace: bool) -> list[str]:
            kernel = Kernel(trace_events=trace)
            seen: list[str] = []
            for index, t in enumerate((3.0, 1.0, 2.0, 2.0)):
                kernel.at(t, lambda i=index: seen.append(f"e{i}"),
                          label=f"e{index}")
            kernel.run(until=2.0)
            kernel.run()
            return seen

        assert drive(False) == drive(True)

    def test_trace_toggle_mid_run_resumes_recording(self):
        kernel, fired = self._kernel()
        kernel.run(max_events=1)
        kernel.trace_events = True
        kernel.run()
        assert [label for *_, label in kernel.event_log] \
            == ["e2.0", "e2.0", "e3.0"]
