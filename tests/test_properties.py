"""Property-based tests (hypothesis) on core data structures.

Invariants covered:

* shape-function staircases: pruning keeps a minimal antichain that
  still dominates every input shape;
* derivation graphs: ancestor/descendant duality, acyclicity;
* the lock manager: scope-of is consistent with holders, release
  undoes acquire;
* script cursors: replaying a logged history reproduces the cursor
  state exactly (the DM's forward-recovery invariant);
* range-feature refinement is a partial order (reflexive, transitive,
  antisymmetric up to equal bounds);
* the WAL: the stable prefix after crash is a prefix of the pre-crash
  record sequence;
* 2PC: the decision is COMMIT iff every participant voted YES (or
  read-only).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import RangeFeature
from repro.dc.script import (
    ActionKind,
    Alternative,
    DopStep,
    Iteration,
    Parallel,
    Script,
    Sequence,
)
from repro.repository.versions import DerivationGraph, DesignObjectVersion
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.te.locks import LockManager, LockMode
from repro.vlsi.shapes import Shape, ShapeFunction

# ---------------------------------------------------------------------------
# shape functions
# ---------------------------------------------------------------------------

shapes_strategy = st.lists(
    st.builds(Shape,
              st.floats(min_value=0.1, max_value=100.0,
                        allow_nan=False, allow_infinity=False),
              st.floats(min_value=0.1, max_value=100.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=12)


@given(shapes_strategy)
def test_shape_pruning_is_antichain(shapes):
    function = ShapeFunction("c", shapes)
    kept = function.shapes
    for i, a in enumerate(kept):
        for b in kept[i + 1:]:
            # no shape dominates another
            assert not (a.width <= b.width and a.height <= b.height)
            assert not (b.width <= a.width and b.height <= a.height)


@given(shapes_strategy)
def test_shape_pruning_dominates_all_inputs(shapes):
    function = ShapeFunction("c", shapes)
    for original in shapes:
        assert any(k.width <= original.width
                   and k.height <= original.height
                   for k in function.shapes)


@given(shapes_strategy)
def test_shape_staircase_monotone(shapes):
    kept = ShapeFunction("c", shapes).shapes
    widths = [s.width for s in kept]
    heights = [s.height for s in kept]
    assert widths == sorted(widths)
    assert heights == sorted(heights, reverse=True)


# ---------------------------------------------------------------------------
# derivation graphs
# ---------------------------------------------------------------------------

@st.composite
def derivation_chains(draw):
    """A random DAG built by attaching each node to earlier nodes."""
    n = draw(st.integers(min_value=1, max_value=15))
    graph = DerivationGraph("da-p")
    for i in range(n):
        if i == 0:
            parents = ()
        else:
            count = draw(st.integers(min_value=1, max_value=min(3, i)))
            indices = draw(st.lists(
                st.integers(min_value=0, max_value=i - 1),
                min_size=count, max_size=count, unique=True))
            parents = tuple(f"v{j}" for j in indices)
        graph.add(DesignObjectVersion(f"v{i}", "T", {}, "da-p", float(i),
                                      parents))
    return graph


@given(derivation_chains())
def test_ancestor_descendant_duality(graph):
    for dov in graph:
        for ancestor in graph.ancestors_of(dov.dov_id):
            assert dov.dov_id in graph.descendants_of(ancestor)


@given(derivation_chains())
def test_no_node_is_its_own_ancestor(graph):
    for dov in graph:
        assert dov.dov_id not in graph.ancestors_of(dov.dov_id)


@given(derivation_chains())
def test_leaves_have_no_descendants(graph):
    for leaf in graph.leaves():
        assert graph.descendants_of(leaf.dov_id) == set()


# ---------------------------------------------------------------------------
# lock manager
# ---------------------------------------------------------------------------

lock_ops = st.lists(st.tuples(
    st.sampled_from(["acquire", "release"]),
    st.integers(min_value=0, max_value=4),   # resource index
    st.integers(min_value=0, max_value=3),   # holder index
    st.sampled_from([LockMode.SHORT_READ, LockMode.DERIVATION,
                     LockMode.SCOPE]),
), max_size=40)


@given(lock_ops)
def test_lock_table_consistency(operations):
    locks = LockManager(usage_allows=lambda *a: False)
    for op, res_i, holder_i, mode in operations:
        resource, holder = f"r{res_i}", f"h{holder_i}"
        if op == "acquire":
            locks.try_acquire(resource, holder, mode)
        else:
            locks.release(resource, holder, mode)
    # scope_of must agree with holders() for every DA
    for holder_i in range(4):
        holder = f"h{holder_i}"
        via_scope = locks.scope_of(holder)
        via_holders = {f"r{r}" for r in range(5)
                       if locks.holds(f"r{r}", holder, LockMode.SCOPE)}
        assert via_scope == via_holders


@given(lock_ops)
def test_derivation_locks_exclusive(operations):
    locks = LockManager(usage_allows=lambda *a: False)
    for op, res_i, holder_i, mode in operations:
        resource, holder = f"r{res_i}", f"h{holder_i}"
        if op == "acquire":
            locks.try_acquire(resource, holder, mode)
        else:
            locks.release(resource, holder, mode)
        for r in range(5):
            deriv = locks.holders(f"r{r}", LockMode.DERIVATION)
            assert len({g.holder for g in deriv}) <= 1


# ---------------------------------------------------------------------------
# script cursor replay
# ---------------------------------------------------------------------------

@st.composite
def script_trees(draw, depth=0):
    if depth >= 2:
        return DopStep(draw(st.sampled_from(["t1", "t2", "t3"])))
    node_kind = draw(st.sampled_from(
        ["dop", "seq", "alt", "par", "iter"]))
    if node_kind == "dop":
        return DopStep(draw(st.sampled_from(["t1", "t2", "t3"])))
    if node_kind == "seq":
        children = draw(st.lists(script_trees(depth=depth + 1),
                                 min_size=1, max_size=3))
        return Sequence(*children)
    if node_kind == "alt":
        children = draw(st.lists(script_trees(depth=depth + 1),
                                 min_size=2, max_size=3))
        return Alternative(*children)
    if node_kind == "par":
        children = draw(st.lists(script_trees(depth=depth + 1),
                                 min_size=2, max_size=2))
        return Parallel(*children)
    body = draw(script_trees(depth=depth + 1))
    return Iteration(body, max_rounds=3)


@given(script_trees(), st.randoms(use_true_random=False))
@settings(max_examples=60)
def test_cursor_replay_reproduces_state(tree, rnd):
    script = Script(tree)
    cursor = script.cursor()
    steps = 0
    while not cursor.is_done() and steps < 50:
        actions = cursor.enabled()
        assert actions, "non-done cursor must offer actions"
        action = rnd.choice(actions)
        if action.kind is ActionKind.CHOICE:
            decision = rnd.randrange(action.options)
        elif action.kind is ActionKind.LOOP:
            decision = rnd.choice(["again", "exit"]) \
                if action.options < 3 else "exit"
        else:
            decision = None
        cursor.fire(action.token, decision)
        steps += 1

    replayed = script.cursor()
    replayed.replay(cursor.history)
    assert replayed.is_done() == cursor.is_done()
    assert sorted(a.token for a in replayed.enabled()) == \
           sorted(a.token for a in cursor.enabled())
    assert list(replayed.executed_tools()) == \
           list(cursor.executed_tools())


@given(script_trees())
@settings(max_examples=60)
def test_script_completes_with_default_decisions(tree):
    """Any generated script terminates under first-choice/exit policy."""
    cursor = Script(tree).cursor()
    for _ in range(200):
        if cursor.is_done():
            break
        action = cursor.enabled()[0]
        if action.kind is ActionKind.CHOICE:
            cursor.fire(action.token, 0)
        elif action.kind is ActionKind.LOOP:
            cursor.fire(action.token, "exit")
        else:
            cursor.fire(action.token)
    assert cursor.is_done()


# ---------------------------------------------------------------------------
# range-feature refinement
# ---------------------------------------------------------------------------

bounds = st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=50.0, max_value=100.0, allow_nan=False))


@given(bounds)
def test_refinement_reflexive(b):
    feature = RangeFeature("f", "x", lo=b[0], hi=b[1])
    assert feature.restricts(feature)


@given(bounds, bounds, bounds)
def test_refinement_transitive(a, b, c):
    fa = RangeFeature("f", "x", lo=a[0], hi=a[1])
    fb = RangeFeature("f", "x", lo=b[0], hi=b[1])
    fc = RangeFeature("f", "x", lo=c[0], hi=c[1])
    if fa.restricts(fb) and fb.restricts(fc):
        assert fa.restricts(fc)


@given(bounds, bounds)
def test_restriction_accepts_subset_of_data(a, b):
    wide = RangeFeature("f", "x", lo=a[0], hi=a[1])
    narrow = RangeFeature("f", "x", lo=b[0], hi=b[1])
    if narrow.restricts(wide):
        for probe in (0.0, 25.0, 50.0, 75.0, 100.0):
            if narrow.satisfied({"x": probe}):
                assert wide.satisfied({"x": probe})


# ---------------------------------------------------------------------------
# WAL
# ---------------------------------------------------------------------------

wal_programs = st.lists(st.sampled_from(["append", "force", "crash"]),
                        max_size=30)


@given(wal_programs)
def test_wal_stable_prefix_property(program):
    wal = WriteAheadLog()
    all_appended: list[int] = []
    for op in program:
        if op == "append":
            record = wal.append(LogRecordKind.CHECKPOINT)
            all_appended.append(record.lsn)
        elif op == "force":
            wal.force()
        else:
            wal.crash()
    stable = [r.lsn for r in wal.stable_records()]
    # stable LSNs are an ordered subsequence-prefix of appended ones
    assert stable == sorted(stable)
    assert set(stable) <= set(all_appended)
    if stable:
        # prefix property: everything appended before the last stable
        # record that was not lost to an *earlier* crash is stable
        assert stable == [lsn for lsn in all_appended
                          if lsn <= stable[-1] and lsn in set(stable)]


# ---------------------------------------------------------------------------
# 2PC decision correctness
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from(["yes", "no", "read_only"]),
                min_size=1, max_size=5))
def test_2pc_decision_matches_votes(vote_names):
    from repro.net.network import Network, NodeKind
    from repro.net.two_phase_commit import (
        TwoPhaseCoordinator,
        Vote,
    )

    class P:
        def __init__(self, node_id, vote):
            self.node_id = node_id
            self.vote = vote

        def prepare(self, txn):
            return self.vote

        def commit(self, txn):
            pass

        def abort(self, txn):
            pass

    network = Network()
    network.add_node("coord", NodeKind.WORKSTATION)
    participants = []
    for i, name in enumerate(vote_names):
        network.add_node(f"p{i}", NodeKind.SERVER)
        participants.append(P(f"p{i}", Vote(name)))
    coordinator = TwoPhaseCoordinator(network, "coord")
    outcome = coordinator.execute("t", participants)
    should_commit = all(v in ("yes", "read_only") for v in vote_names)
    assert outcome.committed == should_commit
