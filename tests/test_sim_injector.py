"""Tests for the failure injector (plan -> scheduled network events)."""

from __future__ import annotations

from repro.net.network import Network
from repro.sim.failures import FailurePlan
from repro.sim.injector import FailureInjector
from repro.sim.scheduler import EventScheduler


def rig():
    scheduler = EventScheduler()
    network = Network(scheduler.clock)
    network.add_server()
    network.add_workstation("ws-1")
    return scheduler, network


class TestFailureInjector:
    def test_crash_and_restart_enacted_at_times(self):
        scheduler, network = rig()
        injector = FailureInjector(network, scheduler)
        plan = FailurePlan().crash_workstation("ws-1", at=10.0,
                                               restart_after=5.0)
        assert injector.arm(plan) == 1
        scheduler.run(until=12.0)
        assert not network.node("ws-1").up
        scheduler.run(until=20.0)
        assert network.node("ws-1").up
        actions = [(e.at, e.action) for e in injector.log]
        assert actions == [(10.0, "crash"), (15.0, "restart")]

    def test_on_restart_callback(self):
        scheduler, network = rig()
        recovered = []
        injector = FailureInjector(network, scheduler,
                                   on_restart=recovered.append)
        injector.arm(FailurePlan().crash_server("server", at=5.0))
        scheduler.run()
        assert recovered == ["server"]

    def test_multiple_failures_ordered(self):
        scheduler, network = rig()
        injector = FailureInjector(network, scheduler)
        plan = (FailurePlan()
                .crash_server("server", at=20.0)
                .crash_workstation("ws-1", at=10.0, restart_after=2.0))
        injector.arm(plan)
        scheduler.run()
        assert [e.node for e in injector.log
                if e.action == "crash"] == ["ws-1", "server"]
        assert len(injector.crashes_of("ws-1")) == 1
        assert network.node("server").up          # restarted
        assert network.node("server").crash_count == 1

    def test_crash_fires_before_same_time_work(self):
        """priority=-1 makes the crash preempt work at the same instant."""
        scheduler, network = rig()
        injector = FailureInjector(network, scheduler)
        injector.arm(FailurePlan().crash_workstation("ws-1", at=10.0))
        observed = []
        scheduler.at(10.0, lambda: observed.append(
            network.node("ws-1").up))
        scheduler.run(until=10.0)
        assert observed == [False]

    def test_repeated_crash_of_same_node(self):
        scheduler, network = rig()
        injector = FailureInjector(network, scheduler)
        plan = (FailurePlan()
                .crash_workstation("ws-1", at=5.0, restart_after=1.0)
                .crash_workstation("ws-1", at=10.0, restart_after=1.0))
        injector.arm(plan)
        scheduler.run()
        assert network.node("ws-1").crash_count == 2
        assert network.node("ws-1").up
